"""Sessions: shared compression and preparation caches over the engine seam.

A :class:`Session` is the stateful companion of the stateless engine
registry.  It owns four keyed caches:

* **compressed layers** — keyed by the weight matrix's content fingerprint
  plus the compression parameters, PE count, name and non-linearity, so a
  design-space sweep that revisits the same dense matrix (across FIFO
  depths, clocks or repeated figure scripts) compresses it exactly once;
* **prepared layers** — keyed by the layer's identity and the engine's
  ``prepare_token()``, so e.g. the cycle engine's per-(PE, column) work
  matrices are extracted once per layer and shared by every configuration
  point with the same PE count;
* **engine instances** — keyed by ``(engine name, configuration)``;
* **compressed models** — whole :class:`~repro.models.ir.ModelIR` graphs
  keyed by model fingerprint, PE count and compression parameters, so a
  two-model sweep compresses each network (and, through the layer cache,
  each distinct weight matrix) exactly once.

Typical use::

    session = Session(CompressionConfig(target_density=0.1))
    layer = session.compress(weights, num_pes=64, name="fc6")
    result = session.run("cycle", layer, activation_batch, config=EIEConfig())

Whole networks flow through the same caches::

    model = build_model("neuraltalk_lstm")
    compressed = session.compress_model(model, num_pes=64)
    run = session.run_model("cycle", model, inputs)      # latency/energy totals

``Session.run`` is a convenience wrapping ``engine -> prepare -> run``; the
individual steps remain available for callers that manage sweep loops
themselves.  ``Session.run_model`` executes every node of a model in order,
propagating the *measured* activation values (decoded weights + bias +
non-linearity) from node to node, so each node's broadcast set carries the
real inter-layer sparsity — the whole-network analogue of Table III's Act%
column — identically on every engine.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any

import numpy as np

from repro.compression.pipeline import (
    CompressedLayer,
    CompressionConfig,
    DeepCompressor,
    weights_fingerprint,
)
from repro.core.config import EIEConfig
from repro.engine.base import EngineResult, PreparedLayer, SimulationEngine
from repro.engine.registry import EngineRegistry
from repro.errors import ConfigurationError
from repro.nn.layers import ACTIVATIONS
from repro.utils.validation import require_matrix

__all__ = ["Session"]


def _propagate_rows(
    inputs: np.ndarray, weights_t: np.ndarray, bias: np.ndarray | None, activation: str
) -> np.ndarray:
    """Node propagation computed one row at a time.

    A batched ``inputs @ weights_t`` goes through BLAS dgemm, whose blocked
    summation order differs from the dgemv call a single vector takes — the
    results agree only to ~1 ulp, not bitwise.  Serving coalesces concurrent
    single-vector requests into batches and promises each client the exact
    bits an offline batch-1 ``run_model`` would have produced, so both paths
    must reduce in the same order.  Row slices of a C-contiguous matrix are
    contiguous vectors, so every row here is the same dgemv a batch-1 call
    makes, and batch composition can never change an individual answer.
    """
    pre = np.stack([row @ weights_t for row in np.ascontiguousarray(inputs)])
    if bias is not None:
        pre = pre + bias
    return ACTIVATIONS[activation](pre)


class Session:
    """Shared caches for compressing, preparing and running layers.

    Each cache is a bounded LRU (least recently *used*, not inserted):
    compressed layers and the per-layer prepared state can pin substantial
    memory (PE arrays, work matrices), so a long-lived session sweeping many
    distinct layers evicts the coldest entries instead of growing forever.
    Eviction is always safe — it only drops the cache's own reference; a
    subsequent request recompresses/re-prepares.

    Args:
        compression: Deep Compression parameters used by :meth:`compress`.
        config: default accelerator configuration for engine/prepare/run
            calls that do not pass one explicitly.
        registry: the engine registry to resolve backend names against
            (the global :class:`EngineRegistry` by default; injectable for
            tests and custom registries).
        max_layers: compressed layers kept (LRU-evicted beyond this).
        max_prepared: prepared layers kept across all engines.
        max_engines: engine instances kept across all configurations.
        max_models: compressed whole models kept (their per-node layers are
            also pinned by the layer cache while hot).
        store: optional :class:`~repro.store.artifacts.ArtifactStore`; when
            set, :meth:`compress` consults it between the in-process LRU and
            a fresh compression, and publishes every fresh result — so a
            layer is compressed once per machine, not once per process.
    """

    def __init__(
        self,
        compression: CompressionConfig | None = None,
        config: EIEConfig | None = None,
        registry: type[EngineRegistry] = EngineRegistry,
        max_layers: int = 128,
        max_prepared: int = 512,
        max_engines: int = 64,
        max_models: int = 32,
        store: Any | None = None,
    ) -> None:
        if min(max_layers, max_prepared, max_engines, max_models) < 1:
            raise ConfigurationError("session cache bounds must be >= 1")
        self.compressor = DeepCompressor(compression or CompressionConfig())
        self.default_config = config or EIEConfig()
        self.registry = registry
        self.store = store
        self._layer_cache: OrderedDict[tuple, CompressedLayer] = OrderedDict()
        self._prepared_cache: OrderedDict[tuple, PreparedLayer] = OrderedDict()
        self._engine_cache: OrderedDict[tuple, SimulationEngine] = OrderedDict()
        self._model_cache: OrderedDict[tuple, Any] = OrderedDict()
        self._bounds = {
            "layers": max_layers,
            "prepared": max_prepared,
            "engines": max_engines,
            "models": max_models,
        }
        self._hits = {"layers": 0, "prepared": 0, "engines": 0, "models": 0}
        # Guards the LRU bookkeeping (get + move_to_end, put + evict): the
        # experiment runner shares one session across worker threads.
        self._lock = threading.RLock()

    def _cache_get(self, which: str, cache: OrderedDict, key: tuple) -> Any:
        with self._lock:
            value = cache.get(key)
            if value is not None:
                cache.move_to_end(key)
                self._hits[which] += 1
            return value

    def _cache_put(self, which: str, cache: OrderedDict, key: tuple, value: Any) -> None:
        with self._lock:
            cache[key] = value
            while len(cache) > self._bounds[which]:
                cache.popitem(last=False)

    # -- compression -------------------------------------------------------------

    def compress(
        self,
        weights: np.ndarray,
        num_pes: int,
        name: str = "layer",
        activation_name: str = "relu",
    ) -> CompressedLayer:
        """Compress ``weights`` for ``num_pes`` PEs, reusing any cached result.

        The cache key is the content fingerprint of the weights together with
        every parameter that shapes the compressed form, so a hit is exact:
        the same :class:`CompressedLayer` object is returned.  With an
        attached artifact store, an LRU miss first tries the on-disk entry
        for the same fingerprint/config/PE triple (a load instead of a
        compression), and every fresh compression is published back.
        """
        weights = require_matrix("weights", weights)
        fingerprint = weights_fingerprint(weights)
        key = (
            fingerprint,
            int(num_pes),
            name,
            activation_name,
            self.compressor.config,
        )
        cached = self._cache_get("layers", self._layer_cache, key)
        if cached is not None:
            return cached
        layer = None
        if self.store is not None:
            layer = self.store.load_layer(
                fingerprint,
                int(num_pes),
                self.compressor.config,
                name=name,
                activation_name=activation_name,
            )
        if layer is None:
            layer = self.compressor.compress(
                weights, num_pes=int(num_pes), name=name, activation_name=activation_name
            )
            if self.store is not None:
                self.store.store_layer(
                    fingerprint, int(num_pes), self.compressor.config, layer
                )
        self._cache_put("layers", self._layer_cache, key, layer)
        return layer

    # -- engines and preparation ---------------------------------------------------

    def engine(self, name: str, config: EIEConfig | None = None) -> SimulationEngine:
        """A (cached) engine instance for ``name`` and ``config``."""
        config = config or self.default_config
        key = (name, config)
        cached = self._cache_get("engines", self._engine_cache, key)
        if cached is not None:
            return cached
        engine = self.registry.create(name, config)
        self._cache_put("engines", self._engine_cache, key, engine)
        return engine

    def prepare(
        self, name: str, layer: Any, config: EIEConfig | None = None
    ) -> PreparedLayer:
        """Prepare ``layer`` for engine ``name``, reusing compatible results.

        Prepared layers are shared between configurations whose
        ``prepare_token()`` matches — e.g. one ``"cycle"`` preparation serves
        every FIFO depth and clock at the same PE count.
        """
        engine = self.engine(name, config)
        # Keying on id() is safe because the cached PreparedLayer holds a
        # strong reference to the layer (payload/source), so the id cannot
        # be recycled while the entry is alive.
        key = (id(layer), engine.prepare_token())
        cached = self._cache_get("prepared", self._prepared_cache, key)
        if cached is not None:
            return cached
        prepared = engine.prepare(layer)
        self._cache_put("prepared", self._prepared_cache, key, prepared)
        return prepared

    def run(
        self,
        name: str,
        layer: Any,
        activations: np.ndarray | None = None,
        config: EIEConfig | None = None,
    ) -> EngineResult:
        """Convenience: resolve the engine, prepare ``layer`` (cached), run."""
        engine = self.engine(name, config)
        prepared = self.prepare(name, layer, config)
        return engine.run(prepared, activations)

    # -- whole-model operations ------------------------------------------------------

    def compress_model(self, model: Any, num_pes: int) -> Any:
        """Compress every node of a :class:`~repro.models.ir.ModelIR`.

        Returns a :class:`~repro.models.compressed.CompressedModel`.  Nodes
        whose weight matrices have the same content fingerprint (and the same
        non-linearity) share one :class:`CompressedLayer` object, and the
        whole result is cached by ``(model fingerprint, PE count, compression
        parameters)`` so repeated sweeps over the same network compress it
        once.
        """
        # Imported lazily: repro.models sits above the engine layer.
        from repro.models.compressed import CompressedModel
        from repro.models.ir import ModelIR

        if not isinstance(model, ModelIR):
            raise ConfigurationError(
                f"compress_model expects a ModelIR, got {type(model).__name__}"
            )
        if num_pes < 1:
            raise ConfigurationError(f"num_pes must be >= 1, got {num_pes}")
        key = (model.fingerprint(), int(num_pes), self.compressor.config)
        cached = self._cache_get("models", self._model_cache, key)
        if cached is not None:
            return cached
        layers = self._load_model_manifest(model, int(num_pes))
        if layers is None:
            layers = {}
            by_content: dict[tuple[str, str], CompressedLayer] = {}
            layer_keys: dict[str, str] = {}
            for node in model:
                fingerprint = weights_fingerprint(node.weight)
                content = (fingerprint, node.activation)
                layer = by_content.get(content)
                if layer is None:
                    layer = self.compress(
                        node.weight,
                        num_pes=int(num_pes),
                        name=f"{model.name}/{node.name}",
                        activation_name=node.activation,
                    )
                    by_content[content] = layer
                layers[node.name] = layer
                if self.store is not None:
                    layer_keys[node.name] = self.store.layer_key(
                        fingerprint, int(num_pes), self.compressor.config
                    )
            self._store_model_manifest(model, int(num_pes), layer_keys)
        compressed = CompressedModel(model=model, num_pes=int(num_pes), layers=layers)
        self._cache_put("models", self._model_cache, key, compressed)
        return compressed

    def _model_manifest_key(self, model: Any, num_pes: int) -> str:
        from repro.store.artifacts import ArtifactStore

        return ArtifactStore.content_key(
            {
                "artifact": "compressed-model",
                "model": model.fingerprint(),
                "num_pes": int(num_pes),
                "compression": self.compressor.config.to_dict(),
            }
        )

    def _load_model_manifest(self, model: Any, num_pes: int) -> dict | None:
        """Rebuild a whole compressed model from its store manifest, if present.

        A manifest hit skips per-node fingerprinting entirely: the manifest
        records each node's compressed-layer content key, so a warm
        ``compress_model`` is one JSON load plus one layer load per distinct
        weight matrix.  Any missing or corrupt layer entry falls back to the
        full compress path (which republishes both the layers and the
        manifest).
        """
        if self.store is None:
            return None
        manifest = self.store.load_json("models", self._model_manifest_key(model, num_pes))
        if manifest is None:
            return None
        layers: dict[str, Any] = {}
        by_key: dict[str, Any] = {}
        for node in model:
            entry = manifest.get("nodes", {}).get(node.name)
            if not isinstance(entry, str):
                return None
            layer = by_key.get(entry)
            if layer is None:
                layer = self.store.load_layer_by_key(
                    entry,
                    name=f"{model.name}/{node.name}",
                    activation_name=node.activation,
                )
                if layer is None:
                    return None
                by_key[entry] = layer
            layers[node.name] = layer
        return layers

    def _store_model_manifest(
        self, model: Any, num_pes: int, layer_keys: dict[str, str]
    ) -> None:
        if self.store is None or len(layer_keys) == 0:
            return
        self.store.store_json(
            "models",
            self._model_manifest_key(model, num_pes),
            {
                "model": model.name,
                "fingerprint": model.fingerprint(),
                "num_pes": int(num_pes),
                "nodes": dict(layer_keys),
            },
        )

    def run_node(
        self,
        name: str,
        node: Any,
        layer: Any,
        inputs: np.ndarray,
        config: EIEConfig | None = None,
    ) -> tuple[Any, np.ndarray]:
        """Run one model node on engine ``name`` and propagate its outputs.

        ``inputs`` is the node's ``(batch, fan_in)`` activation matrix (as
        produced by :meth:`ModelIR.node_input`).  Returns ``(NodeRun,
        outputs)`` where ``outputs`` are the measured activations the
        downstream nodes consume.  Both :meth:`run_model` and the serving
        pipeline dispatch through this method, so a node executes — and
        reduces, bit for bit — identically whether the whole model runs in
        one loop or each node runs on its own pipeline stage.
        """
        from repro.models.compressed import NodeRun, measured_density

        result = self.run(name, layer, inputs, config)
        outputs = _propagate_rows(
            inputs, layer.dense_weights().T, node.bias, node.activation
        )
        record = NodeRun(
            name=node.name,
            layer=layer,
            result=result,
            input_density=measured_density(inputs),
            output_density=measured_density(outputs),
        )
        return record, outputs

    def run_model(
        self,
        name: str,
        model: Any,
        activations: np.ndarray,
        config: EIEConfig | None = None,
    ) -> Any:
        """Run a whole model through engine ``name``, node by node.

        ``model`` is a :class:`~repro.models.ir.ModelIR` (compressed through
        the session caches) or an existing
        :class:`~repro.models.compressed.CompressedModel`; ``activations`` is
        one input vector or a ``(batch, input_size)`` matrix.

        Every node executes on the engine with the *measured* activation
        values of its input — the model input for root nodes, the propagated
        outputs of the source node otherwise.  Propagation always uses the
        compressed layer's decoded weights plus the node's bias and
        non-linearity, so the inter-layer sparsity each broadcast set sees is
        identical on every engine, and each node's engine run is exactly the
        layer-at-a-time ``Session.run`` call with the same inputs.

        Returns a :class:`~repro.models.compressed.ModelRunResult` with
        per-node engine results and, for timing engines, whole-network
        latency/energy totals.
        """
        from repro.models.compressed import CompressedModel, ModelRunResult
        from repro.models.ir import ModelIR

        config = config or self.default_config
        if isinstance(model, CompressedModel):
            if model.num_pes != config.num_pes:
                raise ConfigurationError(
                    f"model is compressed for {model.num_pes} PEs but the "
                    f"configuration has {config.num_pes}"
                )
            compressed = model
        elif isinstance(model, ModelIR):
            compressed = self.compress_model(model, config.num_pes)
        else:
            raise ConfigurationError(
                f"run_model expects a ModelIR or CompressedModel, "
                f"got {type(model).__name__}"
            )
        ir = compressed.model
        activations = np.asarray(activations, dtype=np.float64)
        if activations.ndim == 1:
            matrix, batched = activations[np.newaxis, :], False
        elif activations.ndim == 2:
            matrix, batched = activations, True
        else:
            raise ConfigurationError(
                f"model input must be a vector or (batch, n_in) matrix, "
                f"got shape {activations.shape}"
            )
        if matrix.shape[1] != ir.input_size:
            raise ConfigurationError(
                f"input length {matrix.shape[1]} does not match model "
                f"input size {ir.input_size}"
            )
        if matrix.shape[0] == 0:
            raise ConfigurationError("model input batch must contain at least one vector")

        node_outputs: dict[str, np.ndarray] = {}
        records = []
        for node in ir:
            layer = compressed.layers[node.name]
            inputs = ir.node_input(node, matrix, node_outputs)
            record, outputs = self.run_node(name, node, layer, inputs, config)
            node_outputs[node.name] = outputs
            records.append(record)
        return ModelRunResult(
            model_name=ir.name,
            engine=name,
            num_pes=config.num_pes,
            batch_size=matrix.shape[0],
            batched=batched,
            nodes=tuple(records),
            node_outputs=node_outputs,
            outputs=node_outputs[ir.nodes[-1].name],
        )

    # -- introspection -----------------------------------------------------------

    def cache_info(self) -> dict[str, dict]:
        """Entry and hit counts of the four caches (for tests and reports).

        With an attached artifact store the ``"store"`` entry carries its
        hit/miss/store/error/eviction counters — aggregated at the top level
        and broken down per artifact kind (layers / prepared / models /
        shards) under ``"by_kind"``; without one it reads all zeros.  The
        ``"engines"`` entry additionally breaks entries down by engine name
        under ``"by_engine"`` — engine-cache keys include the registry name,
        so same-config instances of different backends (``cycle`` versus
        ``cycle-native``) occupy distinct entries and never collide.
        """
        if self.store is not None:
            store_stats = self.store.stats()
        else:
            from repro.store.artifacts import ArtifactStore

            store_stats = ArtifactStore.zero_stats()
        # Snapshot sizes, hit counters and the engine-key breakdown under the
        # lock: a concurrent _cache_put may insert or LRU-evict while we read,
        # and iterating a mutating dict raises RuntimeError.
        with self._lock:
            by_engine: dict[str, int] = {}
            for name, _config in self._engine_cache:
                by_engine[name] = by_engine.get(name, 0) + 1
            sizes = {
                "layers": len(self._layer_cache),
                "prepared": len(self._prepared_cache),
                "engines": len(self._engine_cache),
                "models": len(self._model_cache),
            }
            hits = dict(self._hits)
        return {
            "layers": {"entries": sizes["layers"], "hits": hits["layers"]},
            "prepared": {"entries": sizes["prepared"], "hits": hits["prepared"]},
            "engines": {
                "entries": sizes["engines"],
                "hits": hits["engines"],
                "by_engine": by_engine,
            },
            "models": {"entries": sizes["models"], "hits": hits["models"]},
            "store": store_stats,
        }

    def clear(self) -> None:
        """Drop every cached layer, prepared layer, engine and model."""
        with self._lock:
            self._layer_cache.clear()
            self._prepared_cache.clear()
            self._engine_cache.clear()
            self._model_cache.clear()
            for key in self._hits:
                self._hits[key] = 0
