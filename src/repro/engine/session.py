"""Sessions: shared compression and preparation caches over the engine seam.

A :class:`Session` is the stateful companion of the stateless engine
registry.  It owns three keyed caches:

* **compressed layers** — keyed by the weight matrix's content fingerprint
  plus the compression parameters, PE count, name and non-linearity, so a
  design-space sweep that revisits the same dense matrix (across FIFO
  depths, clocks or repeated figure scripts) compresses it exactly once;
* **prepared layers** — keyed by the layer's identity and the engine's
  ``prepare_token()``, so e.g. the cycle engine's per-(PE, column) work
  matrices are extracted once per layer and shared by every configuration
  point with the same PE count;
* **engine instances** — keyed by ``(engine name, configuration)``.

Typical use::

    session = Session(CompressionConfig(target_density=0.1))
    layer = session.compress(weights, num_pes=64, name="fc6")
    result = session.run("cycle", layer, activation_batch, config=EIEConfig())

``Session.run`` is a convenience wrapping ``engine -> prepare -> run``; the
individual steps remain available for callers that manage sweep loops
themselves.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any

import numpy as np

from repro.compression.pipeline import (
    CompressedLayer,
    CompressionConfig,
    DeepCompressor,
    weights_fingerprint,
)
from repro.core.config import EIEConfig
from repro.engine.base import EngineResult, PreparedLayer, SimulationEngine
from repro.engine.registry import EngineRegistry
from repro.errors import ConfigurationError
from repro.utils.validation import require_matrix

__all__ = ["Session"]


class Session:
    """Shared caches for compressing, preparing and running layers.

    Each cache is a bounded LRU (least recently *used*, not inserted):
    compressed layers and the per-layer prepared state can pin substantial
    memory (PE arrays, work matrices), so a long-lived session sweeping many
    distinct layers evicts the coldest entries instead of growing forever.
    Eviction is always safe — it only drops the cache's own reference; a
    subsequent request recompresses/re-prepares.

    Args:
        compression: Deep Compression parameters used by :meth:`compress`.
        config: default accelerator configuration for engine/prepare/run
            calls that do not pass one explicitly.
        registry: the engine registry to resolve backend names against
            (the global :class:`EngineRegistry` by default; injectable for
            tests and custom registries).
        max_layers: compressed layers kept (LRU-evicted beyond this).
        max_prepared: prepared layers kept across all engines.
        max_engines: engine instances kept across all configurations.
    """

    def __init__(
        self,
        compression: CompressionConfig | None = None,
        config: EIEConfig | None = None,
        registry: type[EngineRegistry] = EngineRegistry,
        max_layers: int = 128,
        max_prepared: int = 512,
        max_engines: int = 64,
    ) -> None:
        if min(max_layers, max_prepared, max_engines) < 1:
            raise ConfigurationError("session cache bounds must be >= 1")
        self.compressor = DeepCompressor(compression or CompressionConfig())
        self.default_config = config or EIEConfig()
        self.registry = registry
        self._layer_cache: OrderedDict[tuple, CompressedLayer] = OrderedDict()
        self._prepared_cache: OrderedDict[tuple, PreparedLayer] = OrderedDict()
        self._engine_cache: OrderedDict[tuple, SimulationEngine] = OrderedDict()
        self._bounds = {"layers": max_layers, "prepared": max_prepared, "engines": max_engines}
        self._hits = {"layers": 0, "prepared": 0, "engines": 0}
        # Guards the LRU bookkeeping (get + move_to_end, put + evict): the
        # experiment runner shares one session across worker threads.
        self._lock = threading.RLock()

    def _cache_get(self, which: str, cache: OrderedDict, key: tuple) -> Any:
        with self._lock:
            value = cache.get(key)
            if value is not None:
                cache.move_to_end(key)
                self._hits[which] += 1
            return value

    def _cache_put(self, which: str, cache: OrderedDict, key: tuple, value: Any) -> None:
        with self._lock:
            cache[key] = value
            while len(cache) > self._bounds[which]:
                cache.popitem(last=False)

    # -- compression -------------------------------------------------------------

    def compress(
        self,
        weights: np.ndarray,
        num_pes: int,
        name: str = "layer",
        activation_name: str = "relu",
    ) -> CompressedLayer:
        """Compress ``weights`` for ``num_pes`` PEs, reusing any cached result.

        The cache key is the content fingerprint of the weights together with
        every parameter that shapes the compressed form, so a hit is exact:
        the same :class:`CompressedLayer` object is returned.
        """
        weights = require_matrix("weights", weights)
        key = (
            weights_fingerprint(weights),
            int(num_pes),
            name,
            activation_name,
            self.compressor.config,
        )
        cached = self._cache_get("layers", self._layer_cache, key)
        if cached is not None:
            return cached
        layer = self.compressor.compress(
            weights, num_pes=int(num_pes), name=name, activation_name=activation_name
        )
        self._cache_put("layers", self._layer_cache, key, layer)
        return layer

    # -- engines and preparation ---------------------------------------------------

    def engine(self, name: str, config: EIEConfig | None = None) -> SimulationEngine:
        """A (cached) engine instance for ``name`` and ``config``."""
        config = config or self.default_config
        key = (name, config)
        cached = self._cache_get("engines", self._engine_cache, key)
        if cached is not None:
            return cached
        engine = self.registry.create(name, config)
        self._cache_put("engines", self._engine_cache, key, engine)
        return engine

    def prepare(
        self, name: str, layer: Any, config: EIEConfig | None = None
    ) -> PreparedLayer:
        """Prepare ``layer`` for engine ``name``, reusing compatible results.

        Prepared layers are shared between configurations whose
        ``prepare_token()`` matches — e.g. one ``"cycle"`` preparation serves
        every FIFO depth and clock at the same PE count.
        """
        engine = self.engine(name, config)
        # Keying on id() is safe because the cached PreparedLayer holds a
        # strong reference to the layer (payload/source), so the id cannot
        # be recycled while the entry is alive.
        key = (id(layer), engine.prepare_token())
        cached = self._cache_get("prepared", self._prepared_cache, key)
        if cached is not None:
            return cached
        prepared = engine.prepare(layer)
        self._cache_put("prepared", self._prepared_cache, key, prepared)
        return prepared

    def run(
        self,
        name: str,
        layer: Any,
        activations: np.ndarray | None = None,
        config: EIEConfig | None = None,
    ) -> EngineResult:
        """Convenience: resolve the engine, prepare ``layer`` (cached), run."""
        engine = self.engine(name, config)
        prepared = self.prepare(name, layer, config)
        return engine.run(prepared, activations)

    # -- introspection -----------------------------------------------------------

    def cache_info(self) -> dict[str, dict[str, int]]:
        """Entry and hit counts of the three caches (for tests and reports)."""
        return {
            "layers": {"entries": len(self._layer_cache), "hits": self._hits["layers"]},
            "prepared": {"entries": len(self._prepared_cache), "hits": self._hits["prepared"]},
            "engines": {"entries": len(self._engine_cache), "hits": self._hits["engines"]},
        }

    def clear(self) -> None:
        """Drop every cached layer, prepared layer and engine instance."""
        with self._lock:
            self._layer_cache.clear()
            self._prepared_cache.clear()
            self._engine_cache.clear()
            for key in self._hits:
                self._hits[key] = 0
