"""The built-in backends: legacy simulators refactored behind the seam.

Each adapter wraps one of the pre-existing simulators so its results stay
bit-for-bit identical to direct use of the legacy class (the parity test
suite pins this):

* :class:`FunctionalEngine` — wraps
  :class:`~repro.core.functional.FunctionalEIE`.  ``prepare`` builds the PE
  array once; ``run`` executes each batch row through it.
* :class:`CycleEngine` — wraps the timing kernel behind
  :class:`~repro.core.cycle_model.CycleAccurateEIE`.  ``prepare`` extracts
  the per-(PE, column) work/padding matrices once per layer; a batched
  ``run`` gathers the work columns of *all* batch items with a single NumPy
  fancy-index into those matrices (one CSC column-gather per layer) instead
  of re-deriving them per vector.
* :class:`RTLEngine` — wraps :func:`~repro.core.rtl.pe_rtl.run_pe_rtl`,
  driving one two-phase RTL PE model per array slot through the broadcast
  schedule and reassembling the interleaved outputs.

``CycleEngine.prepare`` also accepts a
:class:`~repro.workloads.generator.LayerWorkload` (the synthetic full-size
Table III layers), whose work matrices are pre-sliced to its own broadcast
schedule; such prepared layers are run with ``activations=None``.
"""

from __future__ import annotations

import numpy as np

from repro.compression.pipeline import CompressedLayer
from repro.core.config import EIEConfig
from repro.core.cycle_model import (
    layer_work_matrices,
    simulate_layer_cycles,
    simulate_layer_cycles_batch,
)
from repro.core.functional import FunctionalEIE
from repro.core.activation_queue import QueueEntry
from repro.core.rtl.pe_rtl import run_pe_rtl
from repro.engine.base import EngineResult, PreparedLayer, SimulationEngine
from repro.engine.registry import register_engine
from repro.errors import SimulationError
from repro.nn.fixed_point import FixedPointFormat
from repro.nn.layers import ACTIVATIONS

__all__ = ["FunctionalEngine", "CycleEngine", "NativeCycleEngine", "RTLEngine"]


def _require_compressed_layer(engine_name: str, layer: object) -> CompressedLayer:
    if not isinstance(layer, CompressedLayer):
        raise SimulationError(
            f"engine {engine_name!r} prepares CompressedLayer objects, "
            f"got {type(layer).__name__}"
        )
    return layer


@register_engine
class FunctionalEngine(SimulationEngine):
    """Bit-exact value simulation behind the engine seam.

    ``prepare`` constructs the :class:`FunctionalEIE` array (CCU, PEs,
    capacity checks) once; every ``run`` reuses it, so multi-vector and
    multi-call workloads no longer pay the array construction per inference.
    """

    name = "functional"

    def __init__(
        self,
        config: EIEConfig | None = None,
        fixed_point: FixedPointFormat | None = None,
    ) -> None:
        super().__init__(config)
        self.fixed_point = fixed_point

    def prepare_token(self) -> tuple:
        return (self.name, self.config, self.fixed_point)

    def prepare(self, layer: CompressedLayer) -> PreparedLayer:
        layer = _require_compressed_layer(self.name, layer)
        simulator = FunctionalEIE(layer, self.config, fixed_point=self.fixed_point)
        return PreparedLayer(
            engine=self.name,
            num_pes=layer.num_pes,
            rows=layer.rows,
            cols=layer.cols,
            activation_name=layer.activation_name,
            payload=simulator,
            source=layer,
            cache_token=self.prepare_token(),
        )

    def run(self, prepared: PreparedLayer, activations: np.ndarray | None = None) -> EngineResult:
        self._check_prepared(prepared)
        if activations is None:
            raise SimulationError(f"engine {self.name!r} requires an activation vector or batch")
        matrix, batched = self._as_batch(prepared, activations)
        simulator: FunctionalEIE = prepared.payload
        results = tuple(simulator.run(row) for row in matrix)
        outputs = np.stack([result.output for result in results])
        return EngineResult(
            engine=self.name,
            batch_size=matrix.shape[0],
            batched=batched,
            outputs=outputs,
            functional=results,
        )


@register_engine
class CycleEngine(SimulationEngine):
    """Broadcast/FIFO timing model behind the engine seam.

    The expensive, layer-dependent half of the legacy
    :meth:`CycleAccurateEIE.simulate_layer` — extracting the per-(PE, column)
    entry and padding counts from the interleaved CSC storage — happens once
    in ``prepare``.  ``run`` then only gathers the broadcast columns and runs
    the timing recurrence: for a batch, the columns of every item are
    gathered with one fancy-index into the prepared matrices.
    """

    name = "cycle"
    #: Which recurrence implementation ``run`` asks for; the native subclass
    #: overrides this.  Falls back to numpy inside the simulate functions.
    backend = "numpy"

    def prepare_token(self) -> tuple:
        # Work matrices depend on the interleaving (PE count) only, so one
        # prepared layer serves a whole FIFO-depth / clock sweep.
        return (self.name, self.config.num_pes)

    def prepare(self, layer) -> PreparedLayer:
        work = getattr(layer, "work", None)
        if work is not None and hasattr(layer, "padding_work"):
            # A LayerWorkload: matrices are pre-sliced to its own schedule.
            if layer.num_pes != self.config.num_pes:
                raise SimulationError(
                    f"workload was built for {layer.num_pes} PEs but the engine "
                    f"configuration has {self.config.num_pes}"
                )
            return PreparedLayer(
                engine=self.name,
                num_pes=layer.num_pes,
                rows=layer.spec.rows,
                cols=layer.spec.cols,
                activation_name="relu",
                # Normalised to int64 here, once: every run call then takes
                # the simulator's assume_valid fast path.
                payload=(
                    "schedule",
                    np.asarray(work, dtype=np.int64),
                    np.asarray(layer.padding_work, dtype=np.int64),
                ),
                source=layer,
                cache_token=self.prepare_token(),
            )
        layer = _require_compressed_layer(self.name, layer)
        if layer.num_pes != self.config.num_pes:
            raise SimulationError(
                f"layer is interleaved over {layer.num_pes} PEs but the configuration "
                f"has {self.config.num_pes}"
            )
        counts, padding = layer_work_matrices(layer)
        return PreparedLayer(
            engine=self.name,
            num_pes=layer.num_pes,
            rows=layer.rows,
            cols=layer.cols,
            activation_name=layer.activation_name,
            payload=("columns", counts, padding, padding.sum(axis=0)),
            source=layer,
            cache_token=self.prepare_token(),
        )

    def run(self, prepared: PreparedLayer, activations: np.ndarray | None = None) -> EngineResult:
        self._check_prepared(prepared)
        kind, counts, padding = prepared.payload[:3]
        if activations is None:
            if kind != "schedule":
                raise SimulationError(
                    f"engine {self.name!r} needs activations unless the prepared layer "
                    "carries its own broadcast schedule (a LayerWorkload)"
                )
            stats = simulate_layer_cycles(
                work=counts,
                fifo_depth=self.config.fifo_depth,
                padding_work=padding,
                clock_mhz=self.config.clock_mhz,
                assume_valid=True,
                backend=self.backend,
            )
            return EngineResult(engine=self.name, batch_size=1, batched=False, cycles=(stats,))
        if kind == "schedule":
            raise SimulationError(
                "this prepared layer is pre-sliced to its workload's schedule and "
                "cannot run arbitrary activations; prepare a CompressedLayer instead"
            )
        matrix, batched = self._as_batch(prepared, activations)
        # One column-gather for the whole batch: concatenate every item's
        # non-zero columns, fancy-index the prepared matrices once, then cut
        # the gathered block back into per-item spans.
        item_ids, column_ids = np.nonzero(matrix)
        gathered_work = counts[:, column_ids]
        boundaries = np.searchsorted(item_ids, np.arange(matrix.shape[0] + 1))
        if matrix.shape[0] == 1:
            stats = (
                simulate_layer_cycles(
                    work=gathered_work,
                    fifo_depth=self.config.fifo_depth,
                    padding_work=padding[:, column_ids],
                    clock_mhz=self.config.clock_mhz,
                    assume_valid=True,
                    backend=self.backend,
                ),
            )
        else:
            # Per-item padding totals from the prepared per-column padding
            # sums: a cumulative sum over the gathered columns, differenced
            # at the item boundaries, avoids gathering full padding matrices.
            padding_per_column = prepared.payload[3]
            padding_cumsum = np.concatenate(
                [[0], np.cumsum(padding_per_column[column_ids])]
            )
            padding_totals = padding_cumsum[boundaries[1:]] - padding_cumsum[boundaries[:-1]]
            # The batched recurrence advances every item per broadcast step
            # (bit-identical to a loop of single runs; see the parity tests).
            stats = tuple(
                simulate_layer_cycles_batch(
                    works=[
                        gathered_work[:, start:end]
                        for start, end in zip(boundaries[:-1], boundaries[1:])
                    ],
                    fifo_depth=self.config.fifo_depth,
                    padding_totals=padding_totals.tolist(),
                    clock_mhz=self.config.clock_mhz,
                    assume_valid=True,
                    backend=self.backend,
                )
            )
        return EngineResult(
            engine=self.name, batch_size=matrix.shape[0], batched=batched, cycles=stats
        )


@register_engine
class NativeCycleEngine(CycleEngine):
    """The cycle model on the JIT-compiled kernel tier (``repro.kernels``).

    ``prepare`` is inherited unchanged — the work/padding matrices are
    backend-independent — while ``run`` asks the simulate functions for the
    ``"native"`` recurrence, which executes as a compiled nopython loop when
    numba is usable and silently falls back to the numpy implementation
    otherwise (numba absent, self-test failed, or ``REPRO_NATIVE=0``).
    Results are bit-identical either way: the recurrence is pure int64
    arithmetic, pinned by the backend-parameterized parity suites.

    The engine name differs from ``"cycle"``, so ``prepare_token()`` and the
    session's engine-cache keys differ too — prepared layers and engine
    instances of the two tiers never collide in a :class:`Session`.
    """

    name = "cycle-native"
    backend = "native"


@register_engine
class RTLEngine(SimulationEngine):
    """Two-phase RTL micro-simulation behind the engine seam.

    Each PE of the array is modelled by
    :class:`~repro.core.rtl.pe_rtl.RTLProcessingElement` driven through the
    layer's broadcast schedule; the interleaved per-PE accumulators are
    reassembled into the dense output and the layer non-linearity applied.
    Cycle counts are reported per PE in ``extra["rtl"]`` (the PEs run
    independently, so the array-level latency is their maximum).
    """

    name = "rtl"

    def prepare_token(self) -> tuple:
        # The payload is the layer itself; the FIFO depth is applied at run
        # time, so one preparation serves every depth at the same PE count.
        return (self.name, self.config.num_pes)

    def prepare(self, layer: CompressedLayer) -> PreparedLayer:
        layer = _require_compressed_layer(self.name, layer)
        if layer.num_pes != self.config.num_pes:
            raise SimulationError(
                f"layer is interleaved over {layer.num_pes} PEs but the configuration "
                f"has {self.config.num_pes}"
            )
        return PreparedLayer(
            engine=self.name,
            num_pes=layer.num_pes,
            rows=layer.rows,
            cols=layer.cols,
            activation_name=layer.activation_name,
            payload=layer,
            source=layer,
            cache_token=self.prepare_token(),
        )

    def run(self, prepared: PreparedLayer, activations: np.ndarray | None = None) -> EngineResult:
        self._check_prepared(prepared)
        if activations is None:
            raise SimulationError(f"engine {self.name!r} requires an activation vector or batch")
        matrix, batched = self._as_batch(prepared, activations)
        layer: CompressedLayer = prepared.payload
        nonlinearity = ACTIVATIONS[prepared.activation_name]
        outputs = np.zeros((matrix.shape[0], prepared.rows), dtype=np.float64)
        runs = []
        for item, row in enumerate(matrix):
            schedule = [
                QueueEntry(column=int(column), value=float(row[column]))
                for column in np.nonzero(row)[0]
            ]
            pre_activation = np.zeros(prepared.rows, dtype=np.float64)
            per_pe = []
            for pe, slice_matrix in enumerate(layer.storage.per_pe):
                result = run_pe_rtl(
                    slice_matrix,
                    layer.codebook,
                    schedule,
                    queue_depth=self.config.fifo_depth,
                )
                local_rows = slice_matrix.num_rows
                global_rows = np.arange(local_rows, dtype=np.int64) * prepared.num_pes + pe
                pre_activation[global_rows] = result.accumulators
                per_pe.append(result)
            outputs[item] = nonlinearity(pre_activation)
            runs.append(tuple(per_pe))
        return EngineResult(
            engine=self.name,
            batch_size=matrix.shape[0],
            batched=batched,
            outputs=outputs,
            extra={"rtl": tuple(runs)},
        )
