"""Execution of declarative experiment specs.

:class:`ExperimentRunner` turns an :class:`~repro.experiments.spec.ExperimentSpec`
into an :class:`~repro.experiments.result.ExperimentResult`:

1. the spec is merged over the registered experiment's defaults and its grid
   is expanded into an ordered list of run points (workload axis first, then
   the experiment's sweep axes, then ``repeat`` when ``repeats > 1``);
2. shared per-run state — one :class:`~repro.workloads.generator.WorkloadBuilder`
   and one :class:`~repro.engine.session.Session` — deduplicates workload
   construction, compression and engine preparation across all points;
3. points execute on one of three executor backends — ``serial`` (in
   order, one thread), ``threads`` (a thread pool when ``jobs > 1``; the
   heavy numpy kernels release the GIL) or ``processes`` (a
   :class:`~concurrent.futures.ProcessPoolExecutor` that partitions the
   points across worker processes, each with its own session, sharing
   compression work through the on-disk artifact store instead of process
   memory) — and records are always assembled in spec point order, so the
   result is bit-identical at every ``--jobs`` level on every backend;
4. optional cross-point finalization (speedups versus a baseline point,
   geometric means) produces the final uniform records.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import replace
from itertools import product
from typing import Any, Callable, Mapping, Sequence

from repro.core.config import EIEConfig
from repro.engine.session import Session
from repro.errors import ConfigurationError, WorkloadError
from repro.experiments.registry import Experiment, ExperimentRegistry
from repro.experiments.result import ExperimentResult
from repro.experiments.spec import ExperimentSpec
from repro.workloads.benchmarks import LayerSpec, get_benchmark
from repro.workloads.generator import LayerWorkload, WorkloadBuilder

__all__ = [
    "EXECUTORS",
    "ExperimentContext",
    "ExperimentRunner",
    "assemble_result",
    "run_experiment",
]

#: Paper id recorded in every result's provenance.
SOURCE_PAPER = "conf_isca_HanLMPPHD16"

#: Executor backends the runner can place grid points on.
EXECUTORS = ("serial", "threads", "processes")


class ExperimentContext:
    """Shared state one experiment run hands to its point functions.

    The context owns the run's workload builder and engine session (both
    shared across every grid point, so repeated (config, layer) preparation
    is deduplicated), the resolved benchmark :class:`LayerSpec` objects, and
    the merged scalar parameters.
    """

    def __init__(
        self,
        experiment: Experiment,
        spec: ExperimentSpec,
        builder: WorkloadBuilder,
        session: Session,
        layer_specs: "dict[str, LayerSpec]",
    ) -> None:
        self.experiment = experiment
        self.spec = spec
        self.builder = builder
        self.session = session
        self.layer_specs = layer_specs
        self.params = dict(spec.params)
        self.base_config = spec.eie_config()
        self.compression = spec.compression_config()
        self.engine_name = spec.engine or "cycle"
        self.seed = spec.seed if spec.seed is not None else 0
        self._memo: dict[Any, Any] = {}
        self._memo_lock = threading.Lock()

    # -- helpers for point functions -----------------------------------------------

    def config(self, **overrides: Any) -> EIEConfig:
        """The spec's accelerator configuration with per-point overrides."""
        if not overrides:
            return self.base_config
        return self.spec.eie_config(**overrides)

    def layer_spec(self, name: str) -> LayerSpec:
        """The resolved (possibly scaled) benchmark spec for ``name``."""
        try:
            return self.layer_specs[name]
        except KeyError:
            raise WorkloadError(
                f"benchmark {name!r} is not part of this run; "
                f"selected workloads: {sorted(self.layer_specs)}"
            ) from None

    def workload(self, name: str, num_pes: int | None = None) -> LayerWorkload:
        """The (cached) cycle-model workload for one benchmark of the run."""
        num_pes = num_pes if num_pes is not None else self.base_config.num_pes
        return self.builder.build(self.layer_spec(name), int(num_pes))

    def memo(self, key: Any, factory: Callable[[], Any]) -> Any:
        """Compute-once storage for deterministic state shared across points."""
        with self._memo_lock:
            if key not in self._memo:
                self._memo[key] = factory()
            return self._memo[key]


def _partition_indices(count: int, parts: int) -> list[range]:
    """Split ``range(count)`` into ``parts`` contiguous, near-equal ranges.

    Contiguity matters: the point grid leads with the benchmark axis, so
    contiguous chunks keep each worker on as few distinct layers as possible
    (fewer compressions/preparations per process).
    """
    parts = max(1, min(parts, count))
    base, extra = divmod(count, parts)
    bounds = [0]
    for part in range(parts):
        bounds.append(bounds[-1] + base + (1 if part < extra else 0))
    return [range(bounds[i], bounds[i + 1]) for i in range(parts)]


def _run_points_in_subprocess(payload: dict) -> list[list[dict]]:
    """Process-pool worker: execute one contiguous chunk of grid points.

    Runs in a separate process, so all shared state is rebuilt from the
    picklable payload: the experiment is re-resolved from the registry
    (importing this module populates it), the spec is rehydrated from its
    dictionary form, and the worker gets its own session/builder.  Cross-
    process compression reuse flows through the on-disk artifact store named
    by ``store_root`` — not through memory — which is what makes the process
    backend scale the GIL-holding compression work.  Returns the per-point
    record lists in chunk order; the parent reassembles them in spec order.
    """
    experiment = ExperimentRegistry.get(payload["experiment"])
    spec = ExperimentSpec.from_dict(payload["spec"])
    layer_specs = {layer.name: layer for layer in payload["layer_specs"]}
    store = None
    if payload["store_root"] is not None:
        from repro.store import ArtifactStore

        store = ArtifactStore(payload["store_root"])
    context = ExperimentContext(
        experiment,
        spec,
        WorkloadBuilder(),
        Session(store=store),
        layer_specs,
    )
    chunk_records: list[list[dict]] = []
    for point in payload["points"]:
        outcome = experiment.run_point(context, point)
        if isinstance(outcome, dict):
            outcome = [outcome]
        chunk_records.append([{**point, **record} for record in outcome])
    return chunk_records


def assemble_result(
    context: ExperimentContext,
    points: Sequence[dict[str, Any]],
    per_point: Sequence[Sequence[dict[str, Any]]],
    layer_specs: Mapping[str, Any],
    jobs: int = 1,
    executor: str = "serial",
    duration_s: float = 0.0,
) -> ExperimentResult:
    """Assemble per-point record lists into the final :class:`ExperimentResult`.

    This is the single place the result's records, metadata and provenance
    are shaped — :meth:`ExperimentRunner.run` and
    :func:`repro.shard.merge_shards` both end here, which is what makes a
    merged sharded sweep byte-identical to a serial run: finalization runs
    over the full flattened record list (never per shard), and the
    serialized metadata/provenance depend only on the spec and the points.
    """
    experiment = context.experiment
    spec = context.spec
    records = [record for point_records in per_point for record in point_records]
    if experiment.finalize is not None:
        records = experiment.finalize(context, records)

    from repro import __version__

    return ExperimentResult(
        experiment=experiment.name,
        spec=spec,
        records=records,
        metadata={
            "points": len(points),
            "jobs": jobs,
            "executor": executor,
            "duration_s": duration_s,
            "axes": [axis for axis in points[0]] if points and points[0] else [],
            "engine": context.engine_name,
        },
        provenance={
            "spec": spec.to_dict(),
            "workloads": list(layer_specs),
            "version": __version__,
            "paper": SOURCE_PAPER,
        },
    )


class ExperimentRunner:
    """Expands a spec's grid into points and executes them through one session.

    Args:
        jobs: default concurrency (``1`` = serial; ``N > 1`` runs points on a
            worker pool).  Per-call ``jobs`` overrides this.
        builder: workload builder shared across runs (one is created if not
            given); inject the benchmark harness's session-scoped builder to
            share its pattern cache.
        session: engine session shared across runs (one per runner if not
            given; when ``store`` is set and no session is given, the created
            session is attached to the store).
        registry: the experiment registry to resolve names against.
        executor: default backend for multi-job runs — ``"threads"`` (one
            shared session, numpy kernels release the GIL), ``"processes"``
            (grid points partitioned across worker processes, compression
            shared through the artifact store) or ``"serial"`` (ignore
            ``jobs`` and run in order).  Per-call ``executor`` overrides it.
        store: optional :class:`~repro.store.artifacts.ArtifactStore` shared
            by the runner's session and every process-pool worker.
    """

    def __init__(
        self,
        jobs: int = 1,
        builder: WorkloadBuilder | None = None,
        session: Session | None = None,
        registry: type[ExperimentRegistry] = ExperimentRegistry,
        executor: str = "threads",
        store: Any | None = None,
    ) -> None:
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        if executor not in EXECUTORS:
            raise ConfigurationError(
                f"unknown executor {executor!r}; expected one of {', '.join(EXECUTORS)}"
            )
        self.jobs = jobs
        self.executor = executor
        self.store = store
        self.builder = builder or WorkloadBuilder()
        self.session = session or Session(store=store)
        self.registry = registry

    # -- spec assembly -----------------------------------------------------------

    def _merge_spec(
        self,
        spec_or_name: "str | ExperimentSpec",
        overrides: Mapping[str, Any],
    ) -> tuple[Experiment, ExperimentSpec]:
        if isinstance(spec_or_name, ExperimentSpec):
            experiment = self.registry.get(spec_or_name.experiment)
            spec = experiment.spec.merged(spec_or_name)
        else:
            experiment = self.registry.get(spec_or_name)
            spec = experiment.spec
        changes: dict[str, Any] = {}
        for name in ("config", "compression", "grid", "params"):
            value = overrides.get(name)
            if value:
                if name == "config" and isinstance(value, EIEConfig):
                    value = value.to_dict()
                changes[name] = {**getattr(spec, name), **dict(value)}
        for name in ("engine", "seed", "scale", "repeats"):
            if overrides.get(name) is not None:
                changes[name] = overrides[name]
        if changes:
            spec = ExperimentSpec.from_dict({**spec.to_dict(), **changes})
        unknown_axes = set(spec.grid) - set(experiment.spec.grid)
        if unknown_axes:
            known = ", ".join(sorted(experiment.spec.grid)) or "<none>"
            raise ConfigurationError(
                f"experiment {experiment.name!r} has no grid axis "
                f"{', '.join(sorted(map(repr, unknown_axes)))}; known axes: {known}"
            )
        unknown_params = set(spec.params) - set(experiment.spec.params)
        if unknown_params:
            known = ", ".join(sorted(experiment.spec.params)) or "<none>"
            raise ConfigurationError(
                f"experiment {experiment.name!r} has no parameter "
                f"{', '.join(sorted(map(repr, unknown_params)))}; known parameters: {known}"
            )
        return experiment, spec

    def _resolve_workloads(
        self,
        experiment: Experiment,
        spec: ExperimentSpec,
        workloads: "Sequence[str | LayerSpec] | None",
    ) -> tuple[ExperimentSpec, dict[str, LayerSpec]]:
        if not experiment.uses_workloads:
            return spec, {}
        selection: Sequence[str | LayerSpec]
        if workloads is not None:
            selection = list(workloads)
            # Record the selection on the spec so provenance stays faithful.
            spec_names = tuple(
                entry.name if isinstance(entry, LayerSpec) else str(entry)
                for entry in selection
            )
            spec = replace(spec, workloads=spec_names)
        elif spec.workloads is not None:
            selection = list(spec.workloads)
        else:
            raise ConfigurationError(
                f"experiment {experiment.name!r} needs a workload selection"
            )
        resolved: dict[str, LayerSpec] = {}
        for entry in selection:
            if isinstance(entry, LayerSpec):
                layer_spec = entry
            else:
                layer_spec = get_benchmark(str(entry))
                if spec.scale is not None:
                    layer_spec = layer_spec.scaled(spec.scale)
            resolved[layer_spec.name] = layer_spec
        if not resolved:
            raise ConfigurationError(
                f"experiment {experiment.name!r} needs at least one workload"
            )
        return spec, resolved

    @staticmethod
    def _expand_points(
        experiment: Experiment, spec: ExperimentSpec, workload_names: Sequence[str]
    ) -> list[dict[str, Any]]:
        axes: list[tuple[str, tuple]] = []
        if experiment.uses_workloads:
            axes.append(("benchmark", tuple(workload_names)))
        for axis in experiment.spec.grid:  # default grid fixes the axis order
            axes.append((axis, spec.grid[axis]))
        repeats = spec.repeats or 1
        if repeats > 1:
            axes.append(("repeat", tuple(range(repeats))))
        if not axes:
            return [{}]
        names = [axis for axis, _ in axes]
        return [
            dict(zip(names, values)) for values in product(*(values for _, values in axes))
        ]

    def resolve(
        self,
        spec_or_name: "str | ExperimentSpec",
        workloads: "Sequence[str | LayerSpec] | None" = None,
        **overrides: Any,
    ) -> tuple[Experiment, ExperimentSpec, "dict[str, LayerSpec]", list[dict[str, Any]]]:
        """Resolve a run without executing it.

        Returns the registered experiment, the fully merged spec, the
        resolved workload specs, and the expanded point list in execution
        order — exactly the state :meth:`run` would execute.  The sharded
        executor plans partitions against this, so a shard worker and a
        serial run agree on point identity and order by construction.
        """
        experiment, spec = self._merge_spec(spec_or_name, overrides)
        spec, layer_specs = self._resolve_workloads(experiment, spec, workloads)
        points = self._expand_points(experiment, spec, list(layer_specs))
        return experiment, spec, layer_specs, points

    def context_for(
        self, experiment: Experiment, spec: ExperimentSpec, layer_specs: "dict[str, LayerSpec]"
    ) -> ExperimentContext:
        """An :class:`ExperimentContext` over this runner's shared session."""
        return ExperimentContext(experiment, spec, self.builder, self.session, layer_specs)

    # -- execution ---------------------------------------------------------------

    def run(
        self,
        spec_or_name: "str | ExperimentSpec",
        jobs: int | None = None,
        workloads: "Sequence[str | LayerSpec] | None" = None,
        config: "Mapping[str, Any] | EIEConfig | None" = None,
        compression: Mapping[str, Any] | None = None,
        grid: Mapping[str, Sequence[Any]] | None = None,
        params: Mapping[str, Any] | None = None,
        engine: str | None = None,
        seed: int | None = None,
        scale: float | None = None,
        repeats: int | None = None,
        executor: str | None = None,
    ) -> ExperimentResult:
        """Execute an experiment (by name or spec) and return its result.

        Keyword overrides are overlaid onto the experiment's default spec;
        ``workloads`` additionally accepts explicit :class:`LayerSpec`
        objects (scaled test layers) that a JSON spec cannot express.
        ``executor`` picks the backend for this run (``serial`` / ``threads``
        / ``processes``); records are bit-identical across all of them.
        """
        jobs = self.jobs if jobs is None else jobs
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        executor = self.executor if executor is None else executor
        if executor not in EXECUTORS:
            raise ConfigurationError(
                f"unknown executor {executor!r}; expected one of {', '.join(EXECUTORS)}"
            )
        experiment, spec, layer_specs, points = self.resolve(
            spec_or_name,
            workloads=workloads,
            config=config,
            compression=compression,
            grid=grid,
            params=params,
            engine=engine,
            seed=seed,
            scale=scale,
            repeats=repeats,
        )
        context = self.context_for(experiment, spec, layer_specs)

        started = time.perf_counter()

        def run_one(point: dict[str, Any]) -> list[dict[str, Any]]:
            outcome = experiment.run_point(context, point)
            if isinstance(outcome, dict):
                outcome = [outcome]
            return [{**point, **record} for record in outcome]

        if executor == "serial" or jobs == 1 or len(points) <= 1:
            per_point = [run_one(point) for point in points]
        elif executor == "processes":
            chunks = _partition_indices(len(points), jobs)
            # Workers share whichever store this runner's session uses —
            # whether it was passed as store= or came attached to an
            # injected session.
            store = self.store if self.store is not None else getattr(self.session, "store", None)
            payloads = [
                {
                    "experiment": experiment.name,
                    "spec": spec.to_dict(),
                    "layer_specs": list(layer_specs.values()),
                    "points": [points[index] for index in chunk],
                    "store_root": str(store.root) if store is not None else None,
                }
                for chunk in chunks
            ]
            with ProcessPoolExecutor(max_workers=len(chunks)) as pool:
                per_chunk = list(pool.map(_run_points_in_subprocess, payloads))
            per_point = [chunk_records for chunk in per_chunk for chunk_records in chunk]
        else:
            with ThreadPoolExecutor(max_workers=min(jobs, len(points))) as pool:
                per_point = list(pool.map(run_one, points))
        return assemble_result(
            context,
            points,
            per_point,
            layer_specs,
            jobs=jobs,
            executor=executor,
            duration_s=time.perf_counter() - started,
        )


def run_experiment(
    spec_or_name: "str | ExperimentSpec",
    jobs: int = 1,
    builder: WorkloadBuilder | None = None,
    session: Session | None = None,
    executor: str = "threads",
    store: Any | None = None,
    **overrides: Any,
) -> ExperimentResult:
    """One-shot convenience: build a runner, execute, return the result."""
    runner = ExperimentRunner(
        jobs=jobs, builder=builder, session=session, executor=executor, store=store
    )
    return runner.run(spec_or_name, **overrides)
