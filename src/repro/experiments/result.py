"""Uniform experiment results: records + metadata + provenance.

Every experiment — sweep, table or ablation — returns one
:class:`ExperimentResult`.  The payload is a flat list of per-point record
dictionaries (uniformly serializable), plus run metadata (point count, jobs,
duration) and provenance (the exact spec, library version and source paper),
so any result can be rendered as the paper's table text, converted to a
dictionary, or written to ``results/<name>.txt`` + ``results/<name>.json``
under one shared naming scheme.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

from repro.analysis.report import format_table
from repro.experiments.spec import ExperimentSpec, _jsonable

__all__ = ["ExperimentResult"]

#: Metadata keys that vary run-to-run without changing the result (timing,
#: concurrency level, executor backend).  They are kept on the in-memory
#: result for reporting but excluded from the serialized form, so the JSON
#: written by a serial run and a process-pool run of the same spec is
#: byte-identical.
VOLATILE_METADATA = ("duration_s", "jobs", "executor")


@dataclass
class ExperimentResult:
    """Outcome of running one :class:`ExperimentSpec`.

    Attributes:
        experiment: registry name of the experiment that produced the result.
        spec: the fully merged spec that was executed.
        records: one dictionary per result row, in deterministic point order
            (identical for any ``--jobs`` level).
        metadata: run bookkeeping (grid point count, jobs, duration seconds).
        provenance: everything needed to reproduce the run (the spec as a
            dictionary, the library version, the source paper id).
    """

    experiment: str
    spec: ExperimentSpec
    records: list[dict[str, Any]]
    metadata: dict[str, Any] = field(default_factory=dict)
    provenance: dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_records(
        cls,
        experiment: str,
        records: Iterable[dict[str, Any]],
        spec: ExperimentSpec | None = None,
        **metadata: Any,
    ) -> "ExperimentResult":
        """Wrap ad-hoc records (e.g. a perf harness) in the uniform shape."""
        return cls(
            experiment=experiment,
            spec=spec or ExperimentSpec(experiment=experiment),
            records=[dict(record) for record in records],
            metadata=dict(metadata),
        )

    # -- rendering ---------------------------------------------------------------

    def to_table(self) -> str:
        """The result rendered as the paper's plain-text table.

        Registered experiments render byte-for-byte what the legacy CLI entry
        point printed; unregistered (ad-hoc) results fall back to a generic
        table over the union of record keys.
        """
        from repro.experiments.registry import ExperimentRegistry

        experiment = ExperimentRegistry.get_optional(self.experiment)
        if experiment is not None and experiment.render is not None:
            return experiment.render(self)
        return self.generic_table()

    def generic_table(self) -> str:
        """A plain table over the union of record keys, in first-seen order."""
        headers: list[str] = []
        for record in self.records:
            for key in record:
                if key not in headers:
                    headers.append(key)
        rows = [[record.get(key) for key in headers] for record in self.records]
        return format_table(headers, rows)

    def legacy(self) -> Any:
        """The records reshaped into the legacy analysis function's return type.

        The back-compat shims (``fifo_depth_sweep``, ``pe_sweep``,
        ``speedup_table``, ...) are thin wrappers over this view.
        """
        from repro.experiments.registry import ExperimentRegistry

        experiment = ExperimentRegistry.get_optional(self.experiment)
        if experiment is None or experiment.to_legacy is None:
            return [dict(record) for record in self.records]
        return experiment.to_legacy(self)

    # -- serialization -----------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """The result as a plain JSON-serializable dictionary.

        Volatile metadata (:data:`VOLATILE_METADATA`: wall-clock duration,
        jobs, executor) is excluded so that serialized results depend only on
        the spec and the records — any two runs of the same spec, at any
        concurrency level and on any executor backend, serialize to the same
        bytes.
        """
        metadata = {
            key: value
            for key, value in self.metadata.items()
            if key not in VOLATILE_METADATA
        }
        return {
            "experiment": self.experiment,
            "spec": self.spec.to_dict(),
            "records": _jsonable(self.records),
            "metadata": _jsonable(metadata),
            "provenance": _jsonable(self.provenance),
        }

    def to_json(self, indent: int | None = 2) -> str:
        """The result serialized as JSON text."""
        return json.dumps(self.to_dict(), indent=indent)

    def write(
        self,
        results_dir: str | Path,
        stem: str | None = None,
        extra: str | None = None,
    ) -> tuple[Path, Path]:
        """Write ``<stem>.txt`` (rendered table) and ``<stem>.json``.

        ``stem`` defaults to the experiment name, giving every entry point the
        shared ``results/<experiment>.{txt,json}`` naming scheme; ``extra``
        text (e.g. a comparison against the paper's published numbers) is
        appended to the ``.txt`` report.
        """
        results_dir = Path(results_dir)
        results_dir.mkdir(parents=True, exist_ok=True)
        stem = stem or self.experiment
        text = self.to_table()
        if extra:
            text += "\n\n" + extra
        txt_path = results_dir / f"{stem}.txt"
        json_path = results_dir / f"{stem}.json"
        txt_path.write_text(text + "\n")
        json_path.write_text(self.to_json() + "\n")
        return txt_path, json_path
