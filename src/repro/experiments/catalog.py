"""The built-in experiment catalog: every figure, table and ablation.

Each entry point of the paper's evaluation (Figures 6-13, Tables I-V, and
the three design-choice ablations) is registered here as a named declarative
experiment.  The point functions reuse the analysis layer's per-point
primitives (``layer_times``, ``layer_energies``, the table row builders,
``compare_strategies``, ...), the renderers reproduce the legacy CLI output
byte for byte, and ``to_legacy`` reshapes the uniform records back into the
legacy analysis functions' return types — those functions are now thin
shims over this catalog.

Experiment names double as the ``results/<name>.{txt,json}`` file stems used
by the benchmark harness.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.analysis.design_space import (
    DEFAULT_FIFO_DEPTHS,
    DEFAULT_SRAM_WIDTHS,
    FLOAT32_REFERENCE_ACCURACY,
)
from repro.analysis.report import format_table, geometric_mean, render_series
from repro.analysis.scalability import DEFAULT_PE_COUNTS
from repro.analysis.speedup import GEOMEAN_KEY, SPEEDUP_CONFIGS
from repro.baselines.roofline import RooflinePlatform
from repro.baselines.specs import CPU_CORE_I7_5930K, GPU_TITAN_X, MOBILE_GPU_TEGRA_K1
from repro.compression.csc import interleaved_entry_counts
from repro.core.partitioning import compare_strategies
from repro.experiments.registry import Experiment, register_experiment
from repro.experiments.result import ExperimentResult
from repro.experiments.runner import ExperimentContext
from repro.experiments.spec import ExperimentSpec
from repro.hardware.energy import multiply_energy_pj
from repro.hardware.sram import sram_read_energy_pj
from repro.nn.fixed_point import FORMATS
from repro.utils.rng import make_rng
from repro.workloads.benchmarks import BENCHMARK_NAMES

__all__ = ["BUILTIN_EXPERIMENTS"]

_SPEEDUP_CONFIGS = SPEEDUP_CONFIGS
_GEOMEAN_KEY = GEOMEAN_KEY
# The paper's sweep ranges, shared with the back-compat shims' defaults.
_FIFO_DEPTHS = DEFAULT_FIFO_DEPTHS
_SRAM_WIDTHS = DEFAULT_SRAM_WIDTHS
_PE_COUNTS = DEFAULT_PE_COUNTS


def _workload_names(result: ExperimentResult) -> list[str]:
    """The run's resolved benchmark names, in execution order."""
    names = result.provenance.get("workloads")
    if names:
        return list(names)
    if result.spec.workloads:
        return list(result.spec.workloads)
    seen: list[str] = []
    for record in result.records:
        name = record.get("benchmark")
        if name is not None and name not in seen:
            seen.append(name)
    return seen


# ---------------------------------------------------------------------------
# Figures 6 and 7: speedup / energy efficiency over CPU dense
# ---------------------------------------------------------------------------


def _fig6_point(ctx: ExperimentContext, point: dict) -> dict:
    from repro.analysis.speedup import layer_times

    times = layer_times(
        ctx.layer_spec(point["benchmark"]),
        ctx.builder,
        ctx.base_config,
        batch=int(ctx.params["batch"]),
    )
    baseline = times["CPU Dense"]
    return {name: baseline / times[name] for name in _SPEEDUP_CONFIGS}


def _fig7_point(ctx: ExperimentContext, point: dict) -> dict:
    from repro.analysis.energy_efficiency import layer_energies

    energies = layer_energies(
        ctx.layer_spec(point["benchmark"]),
        ctx.builder,
        ctx.base_config,
        batch=int(ctx.params["batch"]),
    )
    baseline = energies["CPU Dense"]
    return {name: baseline / energies[name] for name in _SPEEDUP_CONFIGS}


def _geomean_finalize(ctx: ExperimentContext, records: list[dict]) -> list[dict]:
    geomean = {
        name: geometric_mean([record[name] for record in records])
        for name in _SPEEDUP_CONFIGS
    }
    return records + [{"benchmark": _GEOMEAN_KEY, **geomean}]


def _speedup_table_view(result: ExperimentResult) -> dict[str, dict[str, float]]:
    return {
        record["benchmark"]: {name: record[name] for name in _SPEEDUP_CONFIGS}
        for record in result.records
    }


def _render_speedup_like(result: ExperimentResult, title: str) -> str:
    table = _speedup_table_view(result)
    series = {cfg: {b: table[b][cfg] for b in table} for cfg in _SPEEDUP_CONFIGS}
    return title + "\n" + render_series(series, "Benchmark")


# ---------------------------------------------------------------------------
# Figure 8: FIFO depth sweep
# ---------------------------------------------------------------------------


def _fig8_point(ctx: ExperimentContext, point: dict) -> dict:
    depth = int(point["fifo_depth"])
    workload = ctx.workload(point["benchmark"])
    config = ctx.config(fifo_depth=depth)
    stats = ctx.session.run(ctx.engine_name, workload, None, config).stats
    return {"fifo_depth": depth, "load_balance_efficiency": stats.load_balance_efficiency}


def _fig8_legacy(result: ExperimentResult) -> dict[str, dict[int, float]]:
    sweep: dict[str, dict[int, float]] = {}
    for record in result.records:
        sweep.setdefault(record["benchmark"], {})[record["fifo_depth"]] = record[
            "load_balance_efficiency"
        ]
    return sweep


def _render_fig8(result: ExperimentResult) -> str:
    return "Load-balance efficiency vs FIFO depth:\n" + render_series(
        _fig8_legacy(result), "FIFO depth"
    )


# ---------------------------------------------------------------------------
# Figure 9: Spmat SRAM width sweep
# ---------------------------------------------------------------------------


def _fig9_point(ctx: ExperimentContext, point: dict) -> dict:
    width = int(point["width_bits"])
    entry_bits = int(ctx.params["entry_bits"])
    spmat_sram_kb = float(ctx.params["spmat_sram_kb"])
    workload = ctx.workload(point["benchmark"])
    entries_per_read = max(1, width // entry_bits)
    reads = int(np.ceil(workload.work / entries_per_read).sum())
    energy = sram_read_energy_pj(width, spmat_sram_kb)
    return {
        "width_bits": width,
        "num_reads": reads,
        "energy_per_read_pj": energy,
        "total_energy_nj": reads * energy / 1e3,
    }


def _fig9_legacy(result: ExperimentResult) -> list:
    from repro.analysis.design_space import SramWidthPoint

    return [
        SramWidthPoint(
            benchmark=record["benchmark"],
            width_bits=record["width_bits"],
            num_reads=record["num_reads"],
            energy_per_read_pj=record["energy_per_read_pj"],
        )
        for record in result.records
    ]


def _render_fig9(result: ExperimentResult) -> str:
    totals: dict[int, float] = defaultdict(float)
    for record in result.records:
        totals[record["width_bits"]] += record["total_energy_nj"]
    body = format_table(
        ["Layer", "Width", "# reads", "pJ/read", "Total nJ"],
        [
            [
                record["benchmark"],
                record["width_bits"],
                record["num_reads"],
                record["energy_per_read_pj"],
                record["total_energy_nj"],
            ]
            for record in result.records
        ],
    )
    body += "\n\n" + format_table(["Width", "Total energy (nJ)"], sorted(totals.items()))
    return "Spmat SRAM width sweep:\n" + body


# ---------------------------------------------------------------------------
# Figure 10: arithmetic precision study
# ---------------------------------------------------------------------------


def _fig10_point(ctx: ExperimentContext, point: dict) -> dict:
    from repro.analysis.design_space import _build_proxy_classifier, _quantized_forward

    def build_reference():
        rng = make_rng(ctx.seed)
        network = _build_proxy_classifier(
            int(ctx.params["input_size"]),
            int(ctx.params["hidden_size"]),
            int(ctx.params["classes"]),
            rng,
        )
        inputs = rng.normal(0.0, 1.0, size=(int(ctx.params["num_samples"]),
                                            int(ctx.params["input_size"])))
        reference = np.array(
            [int(np.argmax(_quantized_forward(network, sample, None))) for sample in inputs]
        )
        return network, inputs, reference

    network, inputs, reference = ctx.memo("precision-reference", build_reference)
    precision = str(point["precision"])
    fmt = FORMATS[precision]
    predictions = np.array(
        [int(np.argmax(_quantized_forward(network, sample, fmt))) for sample in inputs]
    )
    agreement = float(np.mean(predictions == reference))
    return {
        "precision": precision,
        "accuracy": float(ctx.params["reference_accuracy"]) * agreement,
        "agreement_with_float": agreement,
        "multiply_energy_pj": multiply_energy_pj(precision),
    }


def _fig10_legacy(result: ExperimentResult) -> list:
    from repro.analysis.design_space import PrecisionPoint

    return [
        PrecisionPoint(
            precision=record["precision"],
            accuracy=record["accuracy"],
            multiply_energy_pj=record["multiply_energy_pj"],
            agreement_with_float=record["agreement_with_float"],
        )
        for record in result.records
    ]


def _render_fig10(result: ExperimentResult) -> str:
    return "Arithmetic precision study:\n" + format_table(
        ["Precision", "Accuracy", "Agreement", "Multiply energy (pJ)"],
        [
            [
                record["precision"],
                record["accuracy"],
                record["agreement_with_float"],
                record["multiply_energy_pj"],
            ]
            for record in result.records
        ],
    )


# ---------------------------------------------------------------------------
# Figures 11-13: PE-count scalability sweep
# ---------------------------------------------------------------------------


def _scalability_point(ctx: ExperimentContext, point: dict) -> dict:
    num_pes = int(point["num_pes"])
    workload = ctx.workload(point["benchmark"], num_pes)
    config = ctx.config(num_pes=num_pes)
    stats = ctx.session.run(ctx.engine_name, workload, None, config).stats
    return {
        "num_pes": num_pes,
        "total_cycles": stats.total_cycles,
        "load_balance_efficiency": stats.load_balance_efficiency,
        "real_work_fraction": workload.real_work_fraction,
    }


def _fig11_finalize(ctx: ExperimentContext, records: list[dict]) -> list[dict]:
    baselines: dict[str, int] = {}
    out = []
    for record in records:
        baseline = baselines.setdefault(record["benchmark"], record["total_cycles"])
        cycles = record["total_cycles"]
        out.append({**record, "speedup_vs_1pe": baseline / cycles if cycles else 0.0})
    return out


def _fig11_legacy(result: ExperimentResult) -> dict[str, list]:
    from repro.analysis.scalability import ScalabilityPoint

    sweep: dict[str, list] = {}
    for record in result.records:
        sweep.setdefault(record["benchmark"], []).append(
            ScalabilityPoint(
                benchmark=record["benchmark"],
                num_pes=record["num_pes"],
                total_cycles=record["total_cycles"],
                speedup_vs_1pe=record["speedup_vs_1pe"],
                load_balance_efficiency=record["load_balance_efficiency"],
                real_work_fraction=record["real_work_fraction"],
            )
        )
    return sweep


def _series_view(result: ExperimentResult, x_key: str, y_key: str) -> dict:
    series: dict[str, dict] = {}
    for record in result.records:
        series.setdefault(record["benchmark"], {})[record[x_key]] = record[y_key]
    return series


def _fig12_point(ctx: ExperimentContext, point: dict) -> dict:
    num_pes = int(point["num_pes"])
    workload = ctx.workload(point["benchmark"], num_pes)
    return {"num_pes": num_pes, "real_work_fraction": workload.real_work_fraction}


# ---------------------------------------------------------------------------
# Tables I-V
# ---------------------------------------------------------------------------


def _table1_point(ctx: ExperimentContext, point: dict) -> list[dict]:
    from repro.analysis.tables import table1_rows

    return table1_rows()


def _render_table1(result: ExperimentResult) -> str:
    return format_table(
        ["Operation", "Energy [pJ]", "Relative cost"],
        [[r["operation"], r["energy_pj"], r["relative_cost"]] for r in result.records],
    )


def _table2_point(ctx: ExperimentContext, point: dict) -> list[dict]:
    from repro.analysis.tables import table2_rows

    return table2_rows()


def _render_table2(result: ExperimentResult) -> str:
    return format_table(
        ["Name", "Group", "Power (mW)", "Power (%)", "Area (um2)", "Area (%)"],
        [
            [r["name"], r.get("group", ""), r["power_mw"], r["power_pct"], r["area_um2"],
             r["area_pct"]]
            for r in result.records
        ],
    )


def _table3_point(ctx: ExperimentContext, point: dict) -> list[dict]:
    from repro.analysis.tables import table3_rows

    return table3_rows()


def _render_table3(result: ExperimentResult) -> str:
    return format_table(
        ["Layer", "Size", "Weight%", "Act%", "FLOP%"],
        [
            [r["layer"], r["size"], r["weight_density"], r["activation_density"],
             r["flop_fraction"]]
            for r in result.records
        ],
    )


def _table4_point(ctx: ExperimentContext, point: dict) -> list[dict]:
    layer_spec = ctx.layer_spec(point["benchmark"])
    platforms = {
        "CPU": RooflinePlatform(CPU_CORE_I7_5930K),
        "GPU": RooflinePlatform(GPU_TITAN_X),
        "mGPU": RooflinePlatform(MOBILE_GPU_TEGRA_K1),
    }
    records = []
    for platform_name, model in platforms.items():
        for batch in (1, 64):
            for kernel in ("dense", "sparse"):
                time_s = model.time_s(layer_spec, compressed=(kernel == "sparse"), batch=batch)
                records.append(
                    {"platform": platform_name, "batch": batch, "kernel": kernel,
                     "time_us": time_s * 1e6}
                )
    workload = ctx.workload(point["benchmark"])
    stats = ctx.session.run(ctx.engine_name, workload, None, ctx.base_config).stats
    records.append(
        {"platform": "EIE", "batch": 1, "kernel": "theoretical",
         "time_us": stats.theoretical_time_s * 1e6}
    )
    records.append(
        {"platform": "EIE", "batch": 1, "kernel": "actual", "time_us": stats.time_s * 1e6}
    )
    return records


def _table4_finalize(ctx: ExperimentContext, records: list[dict]) -> list[dict]:
    benchmarks = list(ctx.layer_specs)
    cells = {
        (r["platform"], r["batch"], r["kernel"], r["benchmark"]): r["time_us"] for r in records
    }
    rows: list[dict] = []
    for platform in ("CPU", "GPU", "mGPU"):
        for batch in (1, 64):
            for kernel in ("dense", "sparse"):
                row: dict = {"platform": platform, "batch": batch, "kernel": kernel}
                for name in benchmarks:
                    row[name] = cells[(platform, batch, kernel, name)]
                rows.append(row)
    for kernel in ("theoretical", "actual"):
        row = {"platform": "EIE", "batch": 1, "kernel": kernel}
        for name in benchmarks:
            row[name] = cells[("EIE", 1, kernel, name)]
        rows.append(row)
    return rows


def _render_table4(result: ExperimentResult) -> str:
    benchmarks = _workload_names(result)
    headers = ["Platform", "Batch", "Kernel"] + benchmarks
    return format_table(
        headers,
        [
            [r["platform"], r["batch"], r["kernel"]] + [r[name] for name in benchmarks]
            for r in result.records
        ],
    )


def _table5_point(ctx: ExperimentContext, point: dict) -> list[dict]:
    from repro.analysis.tables import table5_rows

    return table5_rows(builder=ctx.builder)


def _render_table5(result: ExperimentResult) -> str:
    return format_table(
        ["Platform", "Area (mm2)", "Power (W)", "Throughput (fps)", "Energy eff. (frames/J)"],
        [
            [r["platform"], r["area_mm2"], r["power_w"], r["throughput_fps"],
             r["energy_efficiency_fpj"]]
            for r in result.records
        ],
    )


# ---------------------------------------------------------------------------
# Design-choice ablations
# ---------------------------------------------------------------------------


def _index_width_point(ctx: ExperimentContext, point: dict) -> dict:
    bits = int(point["index_bits"])
    layer_spec = ctx.layer_spec(point["benchmark"])
    pattern = ctx.builder.pattern(layer_spec)
    weight_bits = int(ctx.params["weight_bits"])
    pointer_bits = int(ctx.params["pointer_bits"])
    num_pes = ctx.base_config.num_pes
    counts, padding = interleaved_entry_counts(
        pattern.row_indices, pattern.col_ptr, layer_spec.rows, num_pes,
        max_run=2**bits - 1,
    )
    total_entries = int(counts.sum())
    padding_zeros = int(padding.sum())
    storage_bits = total_entries * (weight_bits + bits)
    storage_bits += num_pes * (layer_spec.cols + 1) * pointer_bits
    true_nonzeros = total_entries - padding_zeros
    return {
        "index_bits": bits,
        "true_nonzeros": true_nonzeros,
        "padding_zeros": padding_zeros,
        "storage_bits": storage_bits,
        "padding_fraction": padding_zeros / total_entries if total_entries else 0.0,
        "bits_per_nonzero": storage_bits / true_nonzeros if true_nonzeros else 0.0,
    }


def _index_width_legacy(result: ExperimentResult) -> list:
    from repro.analysis.ablation import IndexWidthPoint

    return [
        IndexWidthPoint(
            benchmark=record["benchmark"],
            index_bits=record["index_bits"],
            true_nonzeros=record["true_nonzeros"],
            padding_zeros=record["padding_zeros"],
            storage_bits=record["storage_bits"],
        )
        for record in result.records
    ]


def _render_index_width(result: ExperimentResult) -> str:
    sections = []
    for name in _workload_names(result):
        rows = [r for r in result.records if r["benchmark"] == name]
        sections.append(
            f"Relative-index width ablation ({name}):\n"
            + format_table(
                ["Index bits", "Padding zeros", "Padding fraction", "Bits per non-zero"],
                [[r["index_bits"], r["padding_zeros"], r["padding_fraction"],
                  r["bits_per_nonzero"]] for r in rows],
            )
        )
    return "\n\n".join(sections)


def _codebook_point(ctx: ExperimentContext, point: dict) -> dict:
    from repro.analysis.ablation import codebook_population, codebook_bits_point

    weights, scale = ctx.memo(
        "codebook-population",
        lambda: codebook_population(int(ctx.params["num_weights"]), ctx.seed),
    )
    legacy = codebook_bits_point(weights, scale, int(point["weight_bits"]), ctx.seed)
    return {
        "weight_bits": legacy.weight_bits,
        "codebook_entries": legacy.codebook_entries,
        "rms_error": legacy.rms_error,
        "relative_rms_error": legacy.relative_rms_error,
        "weight_storage_bits_per_nonzero": legacy.weight_storage_bits_per_nonzero,
    }


def _codebook_legacy(result: ExperimentResult) -> list:
    from repro.analysis.ablation import CodebookBitsPoint

    return [
        CodebookBitsPoint(
            weight_bits=record["weight_bits"],
            codebook_entries=record["codebook_entries"],
            rms_error=record["rms_error"],
            relative_rms_error=record["relative_rms_error"],
            weight_storage_bits_per_nonzero=record["weight_storage_bits_per_nonzero"],
        )
        for record in result.records
    ]


def _render_codebook(result: ExperimentResult) -> str:
    return "Codebook size ablation:\n" + format_table(
        ["Weight bits", "Entries", "RMS error", "Relative RMS error"],
        [
            [r["weight_bits"], r["codebook_entries"], r["rms_error"], r["relative_rms_error"]]
            for r in result.records
        ],
    )


def _partitioning_point(ctx: ExperimentContext, point: dict) -> list[dict]:
    layer_spec = ctx.layer_spec(point["benchmark"])
    pattern = ctx.builder.pattern(layer_spec)
    activations = ctx.builder.activations(layer_spec)
    results = compare_strategies(
        pattern, activations, ctx.base_config.num_pes, fifo_depth=ctx.base_config.fifo_depth
    )
    return [
        {
            "strategy": name,
            "total_cycles": outcome.total_cycles,
            "compute_cycles": outcome.compute_cycles,
            "communication_cycles": outcome.communication_cycles,
            "broadcast_words": outcome.broadcast_words,
            "reduction_words": outcome.reduction_words,
            "load_balance_efficiency": outcome.load_balance_efficiency,
            "idle_pes": outcome.idle_pes,
        }
        for name, outcome in results.items()
    ]


def _render_partitioning(result: ExperimentResult) -> str:
    num_pes = result.spec.config.get("num_pes", 64)
    sections = []
    for name in _workload_names(result):
        rows = [r for r in result.records if r["benchmark"] == name]
        sections.append(
            f"Workload partitioning ablation ({name}, {num_pes} PEs):\n"
            + format_table(
                ["Strategy", "Total cycles", "Compute", "Communication", "Load balance",
                 "Idle PEs"],
                [[r["strategy"], r["total_cycles"], r["compute_cycles"],
                  r["communication_cycles"], r["load_balance_efficiency"], r["idle_pes"]]
                 for r in rows],
            )
        )
    return "\n\n".join(sections)


# ---------------------------------------------------------------------------
# Registration
# ---------------------------------------------------------------------------

BUILTIN_EXPERIMENTS: tuple[Experiment, ...] = (
    Experiment(
        name="fig6_speedup",
        description="Figure 6: speedup of every platform over CPU dense at batch 1",
        spec=ExperimentSpec(
            experiment="fig6_speedup", workloads=BENCHMARK_NAMES, params={"batch": 1}
        ),
        run_point=_fig6_point,
        finalize=_geomean_finalize,
        render=lambda result: _render_speedup_like(result, "Speedup over CPU dense (batch 1):"),
        to_legacy=_speedup_table_view,
    ),
    Experiment(
        name="fig7_energy_efficiency",
        description="Figure 7: energy efficiency of every platform over CPU dense at batch 1",
        spec=ExperimentSpec(
            experiment="fig7_energy_efficiency", workloads=BENCHMARK_NAMES, params={"batch": 1}
        ),
        run_point=_fig7_point,
        finalize=_geomean_finalize,
        render=lambda result: _render_speedup_like(
            result, "Energy efficiency over CPU dense (batch 1):"
        ),
        to_legacy=_speedup_table_view,
    ),
    Experiment(
        name="fig8_fifo_depth",
        description="Figure 8: load-balance efficiency versus activation FIFO depth",
        spec=ExperimentSpec(
            experiment="fig8_fifo_depth",
            workloads=BENCHMARK_NAMES,
            grid={"fifo_depth": _FIFO_DEPTHS},
        ),
        run_point=_fig8_point,
        render=_render_fig8,
        to_legacy=_fig8_legacy,
    ),
    Experiment(
        name="fig9_sram_width",
        description="Figure 9: Spmat SRAM reads and read energy versus interface width",
        spec=ExperimentSpec(
            experiment="fig9_sram_width",
            workloads=BENCHMARK_NAMES,
            grid={"width_bits": _SRAM_WIDTHS},
            params={"spmat_sram_kb": 128.0, "entry_bits": 8},
        ),
        run_point=_fig9_point,
        render=_render_fig9,
        to_legacy=_fig9_legacy,
    ),
    Experiment(
        name="fig10_precision",
        description="Figure 10: accuracy proxy and multiply energy per arithmetic precision",
        spec=ExperimentSpec(
            experiment="fig10_precision",
            grid={"precision": ("float32", "int32", "int16", "int8")},
            params={
                "num_samples": 256,
                "input_size": 128,
                "hidden_size": 96,
                "classes": 64,
                "reference_accuracy": FLOAT32_REFERENCE_ACCURACY,
            },
            seed=42,
        ),
        run_point=_fig10_point,
        render=_render_fig10,
        to_legacy=_fig10_legacy,
        uses_workloads=False,
    ),
    Experiment(
        name="fig11_scalability",
        description="Figure 11: speedup versus number of PEs (1 to 256)",
        spec=ExperimentSpec(
            experiment="fig11_scalability",
            workloads=BENCHMARK_NAMES,
            grid={"num_pes": _PE_COUNTS},
        ),
        run_point=_scalability_point,
        finalize=_fig11_finalize,
        render=lambda result: "Speedup vs number of PEs:\n"
        + render_series(_series_view(result, "num_pes", "speedup_vs_1pe"), "# PEs"),
        to_legacy=_fig11_legacy,
    ),
    Experiment(
        name="fig12_padding_zeros",
        description="Figure 12: real work / total work (padding overhead) versus number of PEs",
        spec=ExperimentSpec(
            experiment="fig12_padding_zeros",
            workloads=BENCHMARK_NAMES,
            grid={"num_pes": _PE_COUNTS},
        ),
        run_point=_fig12_point,
        render=lambda result: "Real work / total work vs number of PEs:\n"
        + render_series(_series_view(result, "num_pes", "real_work_fraction"), "# PEs"),
        to_legacy=lambda result: _series_view(result, "num_pes", "real_work_fraction"),
    ),
    Experiment(
        name="fig13_load_balance",
        description="Figure 13: load-balance efficiency versus number of PEs",
        spec=ExperimentSpec(
            experiment="fig13_load_balance",
            workloads=BENCHMARK_NAMES,
            grid={"num_pes": _PE_COUNTS},
        ),
        run_point=_scalability_point,
        render=lambda result: "Load balance vs number of PEs:\n"
        + render_series(_series_view(result, "num_pes", "load_balance_efficiency"), "# PEs"),
        to_legacy=lambda result: _series_view(result, "num_pes", "load_balance_efficiency"),
    ),
    Experiment(
        name="table1_energy",
        description="Table I: energy per operation in a 45 nm process",
        spec=ExperimentSpec(experiment="table1_energy"),
        run_point=_table1_point,
        render=_render_table1,
        uses_workloads=False,
    ),
    Experiment(
        name="table2_area_power",
        description="Table II: power/area of one PE broken down by component and module",
        spec=ExperimentSpec(experiment="table2_area_power"),
        run_point=_table2_point,
        render=_render_table2,
        uses_workloads=False,
    ),
    Experiment(
        name="table3_benchmarks",
        description="Table III: the nine benchmark layers and their sparsity statistics",
        spec=ExperimentSpec(experiment="table3_benchmarks"),
        run_point=_table3_point,
        render=_render_table3,
        uses_workloads=False,
    ),
    Experiment(
        name="table4_wallclock",
        description="Table IV: per-frame wall-clock time for every platform and kernel",
        spec=ExperimentSpec(experiment="table4_wallclock", workloads=BENCHMARK_NAMES),
        run_point=_table4_point,
        finalize=_table4_finalize,
        render=_render_table4,
    ),
    Experiment(
        name="table5_platforms",
        description="Table V: platform comparison on AlexNet FC7",
        spec=ExperimentSpec(experiment="table5_platforms"),
        run_point=_table5_point,
        render=_render_table5,
        uses_workloads=False,
    ),
    Experiment(
        name="ablation_index_width",
        description="Ablation: relative-index width versus padding zeros and storage",
        spec=ExperimentSpec(
            experiment="ablation_index_width",
            workloads=("Alex-7",),
            grid={"index_bits": (2, 3, 4, 5, 6, 8)},
            params={"weight_bits": 4, "pointer_bits": 16},
        ),
        run_point=_index_width_point,
        render=_render_index_width,
        to_legacy=_index_width_legacy,
    ),
    Experiment(
        name="ablation_codebook_bits",
        description="Ablation: shared-weight codebook size versus reconstruction error",
        spec=ExperimentSpec(
            experiment="ablation_codebook_bits",
            grid={"weight_bits": (2, 3, 4, 5, 6, 8)},
            params={"num_weights": 20_000},
        ),
        run_point=_codebook_point,
        render=_render_codebook,
        to_legacy=_codebook_legacy,
        uses_workloads=False,
    ),
    Experiment(
        name="ablation_partitioning",
        description="Ablation: row-interleaved versus column and 2-D workload partitioning",
        spec=ExperimentSpec(experiment="ablation_partitioning", workloads=("Alex-7",)),
        run_point=_partitioning_point,
        render=_render_partitioning,
    ),
)

for _experiment in BUILTIN_EXPERIMENTS:
    register_experiment(_experiment)
