"""Design-space exploration: the full PE x density x SRAM x ECC Pareto sweep.

``dse_pareto`` is the scale-out demonstrator: a 1008-point grid (7 PE counts
x 12 pruned densities x 4 Spmat SRAM widths x 3 ECC schemes) scoring every
configuration on the three axes the paper trades against each other —
latency (cycle-model M x V time), energy (SRAM reads at the configured
width and ECC overhead plus arithmetic), and storage (encoded entries at
the ECC scheme's stored-bits factor).  Finalization marks the Pareto-optimal
points over (latency, energy, storage), so the merged result *is* the
design-space frontier of Figures 8-13's axes taken jointly.

The sweep is built for sharding (:mod:`repro.shard`): every point derives
from the spec alone — synthetic workloads seeded by ``(spec seed, density)``,
cycle runs memoized per ``(density, PE count)`` — so any partition of the
grid across invocations reproduces the serial records byte for byte, and the
Pareto marking happens at merge time over the full record list.

Smoke runs: ``--set 'grid.num_pes=[4,16]'`` (and friends) shrink the grid
to CI size; ``--set params.rows=128 --set params.cols=128`` shrinks the
synthetic layer.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import format_table
from repro.experiments.registry import Experiment, register_experiment
from repro.experiments.result import ExperimentResult
from repro.experiments.runner import ExperimentContext
from repro.experiments.spec import ExperimentSpec
from repro.hardware.energy import add_energy_pj, multiply_energy_pj
from repro.hardware.sram import (
    ecc_read_energy_factor,
    ecc_storage_factor,
    sram_read_energy_pj,
)
from repro.utils.rng import derive_seed
from repro.workloads.benchmarks import LayerSpec

__all__ = ["DSE_EXPERIMENTS"]

#: The default 7 x 12 x 4 x 3 = 1008-point design-space grid.
DEFAULT_PE_GRID = (1, 2, 4, 8, 16, 32, 64)
DEFAULT_DENSITY_GRID = (
    0.02, 0.04, 0.06, 0.08, 0.10, 0.12, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40,
)
DEFAULT_WIDTH_GRID = (32, 64, 128, 256)
DEFAULT_SCHEME_GRID = ("none", "parity", "secded")


def _dse_layer(ctx: ExperimentContext, density: float) -> LayerSpec:
    """The synthetic layer for one density point (seeded by the spec)."""
    return LayerSpec(
        name=f"dse-d{density:.3f}",
        input_size=int(ctx.params["cols"]),
        output_size=int(ctx.params["rows"]),
        weight_density=float(density),
        activation_density=float(ctx.params["act_density"]),
        description="dse_pareto synthetic layer",
        seed=derive_seed(ctx.seed, "dse-pareto", repr(float(density))),
    )


def _dse_timing(ctx: ExperimentContext, density: float, num_pes: int):
    """Cycle-model stats for one (density, PE count) — shared by 12 points.

    The Spmat width and ECC axes do not change the cycle-level schedule
    (reads are wider, not reordered), so the simulation is memoized per
    (density, PE) pair and the width/ECC effects are costed analytically —
    exactly the Figure 9 discipline, applied pointwise across the grid.
    """
    workload = ctx.builder.build(_dse_layer(ctx, density), num_pes)
    stats = ctx.memo(
        ("dse-timing", repr(float(density)), int(num_pes)),
        lambda: ctx.session.run(
            ctx.engine_name, workload, None, ctx.config(num_pes=int(num_pes))
        ).stats,
    )
    return workload, stats


def _dse_point(ctx: ExperimentContext, point: dict) -> dict:
    num_pes = int(point["num_pes"])
    density = float(point["density"])
    width = int(point["width_bits"])
    scheme = str(point["scheme"])
    entry_bits = int(ctx.params["entry_bits"])
    spmat_sram_kb = float(ctx.params["spmat_sram_kb"])

    workload, stats = _dse_timing(ctx, density, num_pes)
    config = ctx.config(num_pes=num_pes, spmat_sram_width_bits=width)

    # -- latency axis: the cycle model at this PE count ------------------------
    cycles = int(stats.total_cycles)
    latency_us = cycles / config.clock_mhz

    # -- energy axis: SRAM reads at this width/ECC + arithmetic ---------------
    entries_per_read = max(1, width // entry_bits)
    reads = int(np.ceil(workload.work / entries_per_read).sum())
    read_energy_pj = (
        reads * sram_read_energy_pj(width, spmat_sram_kb) * ecc_read_energy_factor(scheme)
    )
    mac_energy_pj = workload.touched_entries * (
        multiply_energy_pj("int16") + add_energy_pj("int16")
    )
    total_energy_nj = (read_energy_pj + mac_energy_pj) / 1e3

    # -- storage axis: encoded entries at the ECC stored-bits factor ----------
    storage_kib = (
        workload.total_entries * entry_bits * ecc_storage_factor(scheme) / 8192.0
    )

    return {
        "cycles": cycles,
        "latency_us": latency_us,
        "load_balance_efficiency": stats.load_balance_efficiency,
        "sram_reads": reads,
        "total_energy_nj": total_energy_nj,
        "storage_kib": storage_kib,
    }


#: The three objectives the frontier minimizes, in record-key form.
PARETO_AXES = ("latency_us", "total_energy_nj", "storage_kib")


def _mark_pareto(ctx: ExperimentContext, records: list[dict]) -> list[dict]:
    """Mark each record's Pareto-optimality over the three objectives.

    Runs at merge/assembly time over the **full** record list — a shard in
    isolation cannot know the frontier — and is order-preserving, so the
    records (and therefore the serialized result) stay byte-identical across
    serial, process-pool and sharded execution.
    """
    objectives = np.array(
        [[record[axis] for axis in PARETO_AXES] for record in records], dtype=np.float64
    )
    optimal = np.ones(len(records), dtype=bool)
    for index in range(len(records)):
        if not optimal[index]:
            continue
        dominates = (objectives <= objectives[index]).all(axis=1) & (
            objectives < objectives[index]
        ).any(axis=1)
        if dominates.any():
            optimal[index] = False
    return [
        {**record, "pareto": bool(flag)} for record, flag in zip(records, optimal)
    ]


def _render_dse(result: ExperimentResult) -> str:
    frontier = [record for record in result.records if record.get("pareto")]
    header = (
        f"Design-space Pareto frontier: {len(frontier)} of "
        f"{len(result.records)} configurations survive "
        f"(minimizing latency, energy, storage):"
    )
    return header + "\n" + format_table(
        ["PEs", "Density", "Width", "ECC", "Latency us", "Energy nJ",
         "Storage KiB", "Load bal"],
        [
            [r["num_pes"], r["density"], r["width_bits"], r["scheme"],
             r["latency_us"], r["total_energy_nj"], r["storage_kib"],
             r["load_balance_efficiency"]]
            for r in frontier
        ],
    )


DSE_EXPERIMENTS: tuple[Experiment, ...] = (
    Experiment(
        name="dse_pareto",
        description="1008-point PE x density x SRAM width x ECC design-space Pareto sweep",
        spec=ExperimentSpec(
            experiment="dse_pareto",
            grid={
                "num_pes": DEFAULT_PE_GRID,
                "density": DEFAULT_DENSITY_GRID,
                "width_bits": DEFAULT_WIDTH_GRID,
                "scheme": DEFAULT_SCHEME_GRID,
            },
            params={
                "rows": 512,
                "cols": 512,
                "act_density": 0.35,
                "spmat_sram_kb": 128.0,
                "entry_bits": 8,
            },
            seed=20160618,
        ),
        run_point=_dse_point,
        render=_render_dse,
        finalize=_mark_pareto,
        uses_workloads=False,
    ),
)

for _experiment in DSE_EXPERIMENTS:
    register_experiment(_experiment)
