"""Declarative experiment specifications.

An :class:`ExperimentSpec` is the *data* form of one evaluation run: which
registered experiment to execute, which benchmark workloads to run it on,
which configuration overlay to apply, and which axes to sweep.  Specs are
frozen, JSON-(de)serializable and validated eagerly, so any caller — the CLI,
CI, a test, a future service tier — can submit the same run and a stored
``spec.json`` reproduces it exactly.

The overlay fields reuse the library's own configuration round-trips:
``config`` is applied over :class:`~repro.core.config.EIEConfig` and
``compression`` over :class:`~repro.compression.pipeline.CompressionConfig`
via their ``from_dict``/``to_dict`` methods, which reject unknown keys with a
clear error naming the bad key.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields, replace
from typing import Any, Mapping, Sequence

from repro.compression.pipeline import CompressionConfig
from repro.core.config import EIEConfig
from repro.errors import ConfigurationError
from repro.utils.serialization import jsonable as _jsonable

__all__ = ["ExperimentSpec"]


@dataclass(frozen=True)
class ExperimentSpec:
    """One declarative experiment run.

    Attributes:
        experiment: registry name of the experiment (``"fig8_fifo_depth"``,
            ``"table4_wallclock"``, ...).
        engine: registered simulation backend the experiment should use where
            it runs a simulator; ``None`` (the default for *every* scalar
            field, so partial specs merge cleanly over experiment defaults)
            resolves to ``"cycle"`` at run time.
        config: overlay applied over the default :class:`EIEConfig` (e.g.
            ``{"num_pes": 16, "fifo_depth": 4}``); unknown keys are rejected.
        compression: overlay over :class:`CompressionConfig`, same contract.
        workloads: Table III benchmark names to run on, or ``None`` for the
            experiment's default selection.
        scale: optional down-scaling factor applied to the selected
            benchmarks (``LayerSpec.scaled``) — used by tests and CI smoke
            runs to keep full sweeps cheap.
        grid: sweep axes as ``{axis: (value, ...)}``; axes are overlaid onto
            the experiment's default grid and unknown axes are rejected at
            run time.
        params: scalar experiment parameters (e.g. ``{"batch": 1}``),
            overlaid onto the experiment's defaults.
        seed: RNG seed for experiments with stochastic inputs.
        repeats: number of repetitions of every grid point (an extra
            ``repeat`` axis when > 1; useful for custom noisy backends).
    """

    experiment: str
    engine: str | None = None
    config: Mapping[str, Any] = field(default_factory=dict)
    compression: Mapping[str, Any] = field(default_factory=dict)
    workloads: tuple[str, ...] | None = None
    scale: float | None = None
    grid: Mapping[str, tuple] = field(default_factory=dict)
    params: Mapping[str, Any] = field(default_factory=dict)
    seed: int | None = None
    repeats: int | None = None

    def __post_init__(self) -> None:
        if not self.experiment or not isinstance(self.experiment, str):
            raise ConfigurationError("ExperimentSpec.experiment must be a non-empty string")
        if self.engine is not None and (not self.engine or not isinstance(self.engine, str)):
            raise ConfigurationError("ExperimentSpec.engine must be a non-empty string")
        if self.repeats is not None and self.repeats < 1:
            raise ConfigurationError(f"repeats must be >= 1, got {self.repeats}")
        if self.scale is not None and self.scale <= 0:
            raise ConfigurationError(f"scale must be > 0, got {self.scale}")
        # Normalise the container fields so equality is representation-independent
        # (JSON round-trips lists; callers pass tuples and numpy scalars).
        object.__setattr__(self, "config", _jsonable(dict(self.config)))
        object.__setattr__(self, "compression", _jsonable(dict(self.compression)))
        if self.workloads is not None:
            object.__setattr__(self, "workloads", tuple(str(name) for name in self.workloads))
        object.__setattr__(
            self,
            "grid",
            {
                str(axis): tuple(values) if isinstance(values, (list, tuple)) else (values,)
                for axis, values in dict(self.grid).items()
            },
        )
        for axis, values in self.grid.items():
            if not values:
                raise ConfigurationError(f"grid axis {axis!r} must have at least one value")
        object.__setattr__(self, "params", _jsonable(dict(self.params)))
        # Validate the overlays eagerly: a typo'd key fails at spec build time.
        self.eie_config()
        self.compression_config()

    # -- overlays ---------------------------------------------------------------

    def eie_config(self, **overrides: Any) -> EIEConfig:
        """The accelerator configuration with this spec's overlay applied."""
        return EIEConfig.from_dict({**self.config, **overrides})

    def compression_config(self) -> CompressionConfig:
        """The compression configuration with this spec's overlay applied."""
        return CompressionConfig.from_dict(dict(self.compression))

    def merged(self, override: "ExperimentSpec | None") -> "ExperimentSpec":
        """Overlay ``override`` onto this (default) spec.

        Mapping fields merge key-wise; scalar fields take the override's
        value whenever it is set (non-``None``) — an unset scalar in a
        partial spec keeps the experiment's default.
        """
        if override is None:
            return self
        if override.experiment != self.experiment:
            raise ConfigurationError(
                f"cannot merge spec for {override.experiment!r} into defaults of "
                f"{self.experiment!r}"
            )
        changes: dict[str, Any] = {
            "config": {**self.config, **override.config},
            "compression": {**self.compression, **override.compression},
            "grid": {**self.grid, **override.grid},
            "params": {**self.params, **override.params},
        }
        if override.workloads is not None:
            changes["workloads"] = override.workloads
        for name in ("engine", "scale", "seed", "repeats"):
            if getattr(override, name) is not None:
                changes[name] = getattr(override, name)
        return replace(self, **changes)

    # -- (de)serialization -------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """The spec as a plain JSON-serializable dictionary."""
        return {
            "experiment": self.experiment,
            "engine": self.engine,
            "config": _jsonable(self.config),
            "compression": _jsonable(self.compression),
            "workloads": list(self.workloads) if self.workloads is not None else None,
            "scale": self.scale,
            "grid": _jsonable(self.grid),
            "params": _jsonable(self.params),
            "seed": self.seed,
            "repeats": self.repeats,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        """Build a spec from a mapping, rejecting unknown keys by name."""
        known = {spec.name for spec in fields(cls)}
        for key in data:
            if key not in known:
                raise ConfigurationError(
                    f"ExperimentSpec has no field {key!r}; "
                    f"valid fields: {', '.join(sorted(known))}"
                )
        return cls(**dict(data))

    def to_json(self, indent: int | None = 2) -> str:
        """The spec serialized as JSON text."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        """Parse a spec from JSON text produced by :meth:`to_json`."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ConfigurationError(f"experiment spec is not valid JSON: {error}") from error
        if not isinstance(data, dict):
            raise ConfigurationError("experiment spec JSON must be an object")
        return cls.from_dict(data)

    # -- overrides ---------------------------------------------------------------

    def with_overrides(self, assignments: "Sequence[tuple[str, Any]]") -> "ExperimentSpec":
        """Apply ``key=value`` overrides (the CLI's ``--set``) to this spec.

        Keys address either a scalar field (``seed=7``, ``scale=64``,
        ``workloads=Alex-6,NT-We``) or one entry of a mapping field with a
        dotted path (``config.num_pes=16``, ``grid.fifo_depth=[1,8]``,
        ``params.batch=2``).
        """
        data = self.to_dict()
        for key, value in assignments:
            if "." in key:
                group, _, inner = key.partition(".")
                if group not in ("config", "compression", "grid", "params"):
                    raise ConfigurationError(
                        f"cannot set {key!r}: {group!r} is not a mapping field of "
                        "ExperimentSpec (use config./compression./grid./params.)"
                    )
                data[group] = {**data[group], inner: value}
            elif key == "workloads":
                value = [value] if isinstance(value, str) else list(value)
                data[key] = value
            elif key in data:
                data[key] = value
            else:
                raise ConfigurationError(
                    f"ExperimentSpec has no field {key!r}; "
                    f"valid fields: {', '.join(sorted(data))}"
                )
        return ExperimentSpec.from_dict(data)
