"""repro.experiments: the declarative experiment layer.

Experiments are *data*, not code: an
:class:`~repro.experiments.spec.ExperimentSpec` describes one evaluation run
(configuration overlay, workload selection, sweep grid, engine, seed), the
string-keyed :class:`~repro.experiments.registry.ExperimentRegistry` names
every figure/table/ablation of the paper, and the
:class:`~repro.experiments.runner.ExperimentRunner` expands a spec into grid
points, executes them (optionally concurrently) through one shared
:class:`~repro.engine.session.Session` and
:class:`~repro.workloads.generator.WorkloadBuilder`, and returns a uniform
:class:`~repro.experiments.result.ExperimentResult` (records + metadata +
provenance) that renders to the paper's table text or JSON files under
``results/``.

Typical use::

    from repro.experiments import run_experiment

    result = run_experiment("fig8_fifo_depth", jobs=4, workloads=("Alex-7",))
    print(result.to_table())
    result.write("results")

See ``docs/ARCHITECTURE.md`` for the spec -> registry -> runner -> result
layering and how to register your own experiment.
"""

from repro.experiments.catalog import BUILTIN_EXPERIMENTS
from repro.experiments.dse_catalog import DSE_EXPERIMENTS
from repro.experiments.models_catalog import MODEL_EXPERIMENTS
from repro.experiments.registry import Experiment, ExperimentRegistry, register_experiment
from repro.experiments.reliability_catalog import RELIABILITY_EXPERIMENTS
from repro.experiments.result import ExperimentResult
from repro.experiments.runner import ExperimentContext, ExperimentRunner, run_experiment
from repro.experiments.serve_catalog import SERVE_EXPERIMENTS
from repro.experiments.spec import ExperimentSpec

__all__ = [
    "BUILTIN_EXPERIMENTS",
    "DSE_EXPERIMENTS",
    "MODEL_EXPERIMENTS",
    "RELIABILITY_EXPERIMENTS",
    "SERVE_EXPERIMENTS",
    "Experiment",
    "ExperimentContext",
    "ExperimentRegistry",
    "ExperimentResult",
    "ExperimentRunner",
    "ExperimentSpec",
    "register_experiment",
    "run_experiment",
]
