"""Reliability experiments: the BER x ECC x model degradation Pareto.

``reliability_pareto`` sweeps a bit-error-rate grid against the three ECC
schemes (:mod:`repro.reliability.ecc`) over registered paper networks, runs
each faulted model through the unmodified engine path
(:func:`~repro.reliability.harness.run_degradation`) and records the three
Pareto axes together: accuracy retained (output divergence, top-1
agreement), storage paid (raw versus ECC-protected bits) and read energy
paid (the per-read ECC factor).  Every point derives its fault seed from
``(spec seed, model, scheme, ber)``, so a fixed spec reproduces
byte-identical records on every executor.

Smoke runs: ``--set "grid.model=[neuraltalk_lstm]"`` and
``--set params.scale=32`` shrink the grid to CI size.
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.compression.pipeline import CompressionConfig
from repro.engine.session import Session
from repro.experiments.registry import Experiment, register_experiment
from repro.experiments.result import ExperimentResult
from repro.experiments.runner import ExperimentContext
from repro.experiments.spec import ExperimentSpec
from repro.hardware.sram import ecc_read_energy_factor, ecc_storage_factor
from repro.models.compressed import CompressedModel
from repro.models.inputs import synthetic_model_inputs
from repro.models.ir import ModelIR
from repro.models.registry import ModelRegistry
from repro.models.spec import ModelSpec
from repro.reliability.faults import FaultConfig
from repro.reliability.harness import run_degradation
from repro.utils.rng import derive_seed

__all__ = ["RELIABILITY_EXPERIMENTS"]

#: Default sweep: the two extreme paper networks (largest FC stack and the
#: LSTM), four decades of BER and all three protection schemes.
DEFAULT_RELIABILITY_MODELS = ("alexnet_fc", "neuraltalk_lstm")
DEFAULT_BER_GRID = (0.0, 1e-5, 1e-4, 1e-3)
DEFAULT_SCHEME_GRID = ("none", "parity", "secded")


def _build_model(ctx: ExperimentContext, name: str) -> ModelIR:
    """Build (and memoize) one registered model under the spec's params."""
    scale = ctx.params.get("scale")
    seed = ctx.params.get("seed")

    def build() -> ModelIR:
        spec = ModelSpec(
            model=name,
            scale=None if scale is None else float(scale),
            seed=None if seed is None else int(seed),
        )
        return ModelRegistry.build(spec)

    return ctx.memo(("model", name, scale, seed), build)


def _model_session(ctx: ExperimentContext) -> Session:
    """The session whose compressor honours the spec's compression overlay."""
    if ctx.compression == CompressionConfig():
        return ctx.session
    return ctx.memo(
        ("model-session", ctx.compression),
        lambda: Session(
            ctx.compression, config=ctx.base_config, store=ctx.session.store
        ),
    )


def _compressed_model(ctx: ExperimentContext, name: str) -> CompressedModel:
    """Compress (and memoize) one model — shared across the BER/scheme axes.

    ``ctx.memo`` is not reentrant, so every memoized dependency is resolved
    *before* entering the memo; factories must never call ``ctx.memo``.
    """
    model = _build_model(ctx, name)
    session = _model_session(ctx)
    return ctx.memo(
        ("reliability-compressed", name),
        lambda: session.compress_model(model, ctx.base_config.num_pes),
    )


def _golden_run(ctx: ExperimentContext, name: str):
    """Run (and memoize) the unfaulted model — the divergence reference."""
    model = _build_model(ctx, name)
    compressed = _compressed_model(ctx, name)
    session = _model_session(ctx)

    def run():
        inputs = synthetic_model_inputs(
            model,
            batch=int(ctx.params["batch"]),
            seed=int(ctx.params.get("input_seed", 1)),
        )
        run_result = session.run_model(
            ctx.engine_name, compressed, inputs, ctx.base_config
        )
        return inputs, run_result

    return ctx.memo(("reliability-golden", name, ctx.engine_name), run)


def _reliability_point(ctx: ExperimentContext, point: dict) -> dict:
    name = str(point["model"])
    ber = float(point["ber"])
    scheme = str(point["scheme"])
    compressed = _compressed_model(ctx, name)
    inputs, golden = _golden_run(ctx, name)
    fault = FaultConfig(
        ber=ber,
        scheme=scheme,
        seed=derive_seed(ctx.seed, "reliability-pareto", name, scheme, repr(ber)),
    )
    outcome = run_degradation(
        _model_session(ctx),
        ctx.engine_name,
        compressed,
        inputs,
        fault,
        config=ctx.base_config,
        golden_run=golden,
    )
    counters = outcome.injection.counters
    raw_bits = compressed.storage_report()["compressed_bits"]
    return {
        # -- accuracy axis ----------------------------------------------------
        "output_rmse": outcome.metrics["output_rmse"],
        "output_relative_error": outcome.metrics["output_relative_error"],
        "top1_agreement": outcome.metrics["top1_agreement"],
        "bit_identical": outcome.metrics["bit_identical"],
        # -- what the SRAM saw ------------------------------------------------
        "flips": counters["flips"],
        "data_flips": counters["data_flips"],
        "corrected_words": counters["corrected_words"],
        "detected_words": counters["detected_words"],
        "silent_words": counters["silent_words"],
        "multi_flip_words": counters["multi_flip_words"],
        # -- storage axis -----------------------------------------------------
        "storage_kib": raw_bits / 8192.0,
        "protected_kib": counters["stored_bits"] / 8192.0,
        "storage_factor": ecc_storage_factor(scheme),
        # -- energy axis ------------------------------------------------------
        "read_energy_factor": ecc_read_energy_factor(scheme),
    }


def _render_reliability(result: ExperimentResult) -> str:
    return "Reliability Pareto (accuracy vs storage vs read energy):\n" + format_table(
        ["Model", "BER", "Scheme", "Rel err", "Top-1 agree", "Identical",
         "Flips", "Silent", "Corrected", "Stored KiB", "Storage x", "Read-E x"],
        [
            [r["model"], r["ber"], r["scheme"], r["output_relative_error"],
             r["top1_agreement"], r["bit_identical"], r["flips"],
             r["silent_words"], r["corrected_words"], r["protected_kib"],
             r["storage_factor"], r["read_energy_factor"]]
            for r in result.records
        ],
    )


RELIABILITY_EXPERIMENTS: tuple[Experiment, ...] = (
    Experiment(
        name="reliability_pareto",
        description="Accuracy/storage/energy Pareto of ECC schemes under SRAM bit faults",
        spec=ExperimentSpec(
            experiment="reliability_pareto",
            grid={
                "model": DEFAULT_RELIABILITY_MODELS,
                "ber": DEFAULT_BER_GRID,
                "scheme": DEFAULT_SCHEME_GRID,
            },
            params={"scale": 64, "seed": None, "batch": 4, "input_seed": 1},
            engine="functional",
        ),
        run_point=_reliability_point,
        render=_render_reliability,
        uses_workloads=False,
    ),
)

for _experiment in RELIABILITY_EXPERIMENTS:
    register_experiment(_experiment)
