"""String-keyed registry of declarative experiments.

The experiment registry mirrors the engine registry pattern
(:class:`~repro.engine.registry.EngineRegistry`): every reproduction entry
point — each figure, table and ablation of the paper — registers itself under
a short name (``"fig8_fifo_depth"``, ``"table4_wallclock"``, ...) together
with its default :class:`~repro.experiments.spec.ExperimentSpec`, a per-point
run function, and a renderer reproducing the legacy CLI output byte for byte.
Consumers select experiments by name:

    from repro.experiments import run_experiment
    result = run_experiment("fig8_fifo_depth", workloads=("Alex-7",))
    print(result.to_table())
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import ConfigurationError
from repro.experiments.spec import ExperimentSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.result import ExperimentResult
    from repro.experiments.runner import ExperimentContext

__all__ = ["Experiment", "ExperimentRegistry", "register_experiment"]


@dataclass(frozen=True)
class Experiment:
    """One registered experiment.

    Attributes:
        name: registry key (also the default ``results/<name>.*`` stem).
        description: one-line summary shown by ``repro experiment list``.
        spec: the default spec (grid axes, params, workload selection).
        run_point: ``(context, point) -> record(s)`` — executes one grid
            point and returns one record dictionary or a list of them.
        render: ``result -> str`` — the paper-table text of a result
            (byte-identical to the legacy CLI output).
        finalize: optional ``(context, records) -> records`` post-processing
            over the assembled records (cross-point derivations such as
            speedup-versus-baseline or geometric means).
        to_legacy: optional ``result -> legacy value`` reshaping records into
            the legacy analysis function's return type (used by the
            back-compat shims).
        uses_workloads: whether the grid gains an implicit leading
            ``benchmark`` axis from the spec's workload selection.
    """

    name: str
    description: str
    spec: ExperimentSpec
    run_point: "Callable[[ExperimentContext, dict], Any]"
    render: "Callable[[ExperimentResult], str] | None" = None
    finalize: "Callable[[ExperimentContext, list[dict]], list[dict]] | None" = None
    to_legacy: "Callable[[ExperimentResult], Any] | None" = None
    uses_workloads: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("experiment name must be non-empty")
        if self.spec.experiment != self.name:
            raise ConfigurationError(
                f"experiment {self.name!r} has a default spec for {self.spec.experiment!r}"
            )


class ExperimentRegistry:
    """Maps experiment names to :class:`Experiment` definitions.

    The class itself is the default global registry (same pattern as
    :class:`~repro.engine.registry.EngineRegistry`); importing
    :mod:`repro.experiments` pre-populates it with every figure, table and
    ablation of the paper's evaluation.
    """

    _experiments: dict[str, Experiment] = {}

    @classmethod
    def register(cls, experiment: Experiment) -> Experiment:
        """Register ``experiment`` under its name."""
        existing = cls._experiments.get(experiment.name)
        if existing is not None and existing is not experiment:
            raise ConfigurationError(
                f"experiment name {experiment.name!r} is already registered"
            )
        cls._experiments[experiment.name] = experiment
        return experiment

    @classmethod
    def unregister(cls, name: str) -> None:
        """Remove an experiment (mainly for tests of custom experiments)."""
        cls._experiments.pop(name, None)

    @classmethod
    def get(cls, name: str) -> Experiment:
        """The experiment registered under ``name``."""
        try:
            return cls._experiments[name]
        except KeyError:
            known = ", ".join(sorted(cls._experiments)) or "<none>"
            raise ConfigurationError(
                f"unknown experiment {name!r}; registered experiments: {known}"
            ) from None

    @classmethod
    def get_optional(cls, name: str) -> Experiment | None:
        """Like :meth:`get` but ``None`` for unknown names (ad-hoc results)."""
        return cls._experiments.get(name)

    @classmethod
    def names(cls) -> tuple[str, ...]:
        """All registered experiment names, sorted."""
        return tuple(sorted(cls._experiments))

    @classmethod
    def describe(cls, name: str) -> dict[str, Any]:
        """A JSON-friendly description of one experiment (CLI ``describe``)."""
        experiment = cls.get(name)
        return {
            "name": experiment.name,
            "description": experiment.description,
            "uses_workloads": experiment.uses_workloads,
            "axes": list(experiment.spec.grid),
            "default_spec": experiment.spec.to_dict(),
        }


def register_experiment(experiment: Experiment) -> Experiment:
    """Register ``experiment`` with the global :class:`ExperimentRegistry`."""
    return ExperimentRegistry.register(experiment)
