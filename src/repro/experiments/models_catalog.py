"""Model-level experiments: whole networks through the declarative layer.

The layer-level catalog (:mod:`repro.experiments.catalog`) reproduces the
paper's per-layer evaluation; these experiments evaluate whole registered
models (:mod:`repro.models`) through the same spec → registry → runner →
result machinery:

* ``model_storage`` — per-model Deep Compression accounting (aggregate
  storage, compression ratio, Huffman ratio) over every node;
* ``model_speedup`` — whole-network latency/energy on the cycle engine with
  measured inter-layer activation sparsity, versus the dense CPU roofline
  baseline.

Both sweep a ``model`` grid axis over the registered paper networks; pass
``--set "grid.model=[alexnet_fc]"`` or ``--set params.scale=64`` to the CLI
for subsets and smoke runs.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import format_table
from repro.baselines.roofline import RooflinePlatform
from repro.baselines.specs import CPU_CORE_I7_5930K
from repro.compression.pipeline import CompressionConfig
from repro.engine.session import Session
from repro.experiments.registry import Experiment, register_experiment
from repro.experiments.result import ExperimentResult
from repro.experiments.runner import ExperimentContext
from repro.experiments.spec import ExperimentSpec
from repro.models.inputs import synthetic_model_inputs
from repro.models.ir import ModelIR
from repro.models.registry import ModelRegistry
from repro.models.spec import ModelSpec
from repro.workloads.benchmarks import LayerSpec

__all__ = ["MODEL_EXPERIMENTS"]

#: The registered paper networks every model experiment sweeps by default.
DEFAULT_MODEL_GRID = ("alexnet_fc", "vgg_fc", "neuraltalk_lstm")


def _build_model(ctx: ExperimentContext, name: str) -> ModelIR:
    """Build (and memoize) one registered model under the spec's params."""
    scale = ctx.params.get("scale")
    seed = ctx.params.get("seed")

    def build() -> ModelIR:
        spec = ModelSpec(
            model=name,
            scale=None if scale is None else float(scale),
            seed=None if seed is None else int(seed),
        )
        return ModelRegistry.build(spec)

    return ctx.memo(("model", name, scale, seed), build)


def _model_session(ctx: ExperimentContext) -> Session:
    """The session whose compressor honours the spec's compression overlay.

    The runner's shared session is built with default compression; when the
    spec overlays `compression`, a dedicated (memoized) session carries it —
    otherwise storage/latency numbers would silently ignore the overlay.
    """
    if ctx.compression == CompressionConfig():
        return ctx.session
    return ctx.memo(
        ("model-session", ctx.compression),
        lambda: Session(
            ctx.compression, config=ctx.base_config, store=ctx.session.store
        ),
    )


def _clamped_density(value: float) -> float:
    """Clamp a measured density into LayerSpec's (0, 1] domain."""
    return min(max(float(value), 1e-6), 1.0)


def _model_storage_point(ctx: ExperimentContext, point: dict) -> dict:
    model = _build_model(ctx, str(point["model"]))
    compressed = _model_session(ctx).compress_model(model, ctx.base_config.num_pes)
    report = compressed.storage_report()
    return {
        "nodes": report["num_nodes"],
        "unique_layers": report["num_unique_layers"],
        "parameters": model.num_parameters,
        "dense_kib": report["dense_bits"] / 8192.0,
        "compressed_kib": report["compressed_bits"] / 8192.0,
        "compression_ratio": report["compression_ratio"],
        "huffman_compression_ratio": report["huffman_compression_ratio"],
        "weight_density": report["weight_density"],
    }


def _render_model_storage(result: ExperimentResult) -> str:
    return "Whole-model Deep Compression storage:\n" + format_table(
        ["Model", "Nodes", "Params", "Dense KiB", "Compressed KiB", "Ratio",
         "Huffman ratio", "Weight%"],
        [
            [r["model"], r["nodes"], r["parameters"], r["dense_kib"],
             r["compressed_kib"], r["compression_ratio"],
             r["huffman_compression_ratio"], r["weight_density"]]
            for r in result.records
        ],
    )


def _model_speedup_point(ctx: ExperimentContext, point: dict) -> dict:
    model = _build_model(ctx, str(point["model"]))
    batch = int(ctx.params["batch"])
    inputs = synthetic_model_inputs(
        model, batch=batch, seed=int(ctx.params.get("input_seed", 1))
    )
    run = _model_session(ctx).run_model(ctx.engine_name, model, inputs, ctx.base_config)

    cpu = RooflinePlatform(CPU_CORE_I7_5930K)
    cpu_time_s = 0.0
    for node_run in run.nodes:
        node_spec = LayerSpec(
            name=node_run.name,
            input_size=node_run.layer.cols,
            output_size=node_run.layer.rows,
            weight_density=_clamped_density(node_run.layer.weight_density),
            activation_density=_clamped_density(node_run.input_density),
        )
        cpu_time_s += cpu.dense_time_s(node_spec, batch=batch)
    eie_per_frame_s = run.latency_s / batch
    return {
        "nodes": len(run.nodes),
        "total_cycles": run.total_cycles,
        "latency_us_per_frame": eie_per_frame_s * 1e6,
        "energy_uj_per_frame": run.energy_j / batch * 1e6,
        "cpu_dense_us_per_frame": cpu_time_s * 1e6,
        "speedup_vs_cpu_dense": cpu_time_s / eie_per_frame_s if eie_per_frame_s else 0.0,
        "mean_activation_density": float(
            np.mean([node_run.input_density for node_run in run.nodes])
        ),
    }


def _render_model_speedup(result: ExperimentResult) -> str:
    return "Whole-model EIE latency/energy vs CPU dense:\n" + format_table(
        ["Model", "Nodes", "Cycles", "Latency (us)", "Energy (uJ)",
         "CPU dense (us)", "Speedup", "Act% (mean)"],
        [
            [r["model"], r["nodes"], r["total_cycles"], r["latency_us_per_frame"],
             r["energy_uj_per_frame"], r["cpu_dense_us_per_frame"],
             r["speedup_vs_cpu_dense"], r["mean_activation_density"]]
            for r in result.records
        ],
    )


MODEL_EXPERIMENTS: tuple[Experiment, ...] = (
    Experiment(
        name="model_storage",
        description="Whole-model Deep Compression storage and compression ratios",
        spec=ExperimentSpec(
            experiment="model_storage",
            grid={"model": DEFAULT_MODEL_GRID},
            params={"scale": None, "seed": None},
        ),
        run_point=_model_storage_point,
        render=_render_model_storage,
        uses_workloads=False,
    ),
    Experiment(
        name="model_speedup",
        description="Whole-model latency/energy with measured activation sparsity vs CPU dense",
        spec=ExperimentSpec(
            experiment="model_speedup",
            grid={"model": DEFAULT_MODEL_GRID},
            params={"batch": 1, "scale": None, "seed": None, "input_seed": 1},
        ),
        run_point=_model_speedup_point,
        render=_render_model_speedup,
        uses_workloads=False,
    ),
)

for _experiment in MODEL_EXPERIMENTS:
    register_experiment(_experiment)
