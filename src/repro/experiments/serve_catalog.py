"""Serving experiments: the load-generator sweep as a tracked artifact.

``serve_latency`` sweeps offered load (requests/second, open-loop Poisson
arrivals) against an in-process :class:`~repro.serve.server.Server` and
records what each rate does to p50/p99 latency, sustained throughput, the
rejection ratio and the mean coalesced batch size — the serving-layer
analogue of fig6's layer sweep, tracked through the same spec → registry →
runner → result machinery.

Wall-clock latencies vary run to run (they time a real event loop), but
arrivals, request vectors and all simulated quantities are deterministic
per seed.  Use ``--set`` for smoke runs, e.g.
``--set params.requests=50 --set "grid.offered_rps=[200]"``.
"""

from __future__ import annotations

import asyncio

from repro.analysis.report import format_table
from repro.compression.pipeline import CompressionConfig
from repro.experiments.registry import Experiment, register_experiment
from repro.experiments.result import ExperimentResult
from repro.experiments.runner import ExperimentContext
from repro.experiments.spec import ExperimentSpec
from repro.models.inputs import synthetic_model_inputs
from repro.models.registry import ModelRegistry
from repro.models.spec import ModelSpec
from repro.serve.loadgen import run_open_loop
from repro.serve.server import BatchPolicy, Server

__all__ = ["SERVE_EXPERIMENTS"]

#: Default offered-load sweep (requests/second).
DEFAULT_RATES = (100.0, 200.0, 400.0, 800.0, 1600.0)


def _serve_latency_point(ctx: ExperimentContext, point: dict) -> dict:
    """One offered-load point: fresh server, open-loop run, flat record.

    Each grid point builds its own server (the model itself is memoized
    across points) so a slow point's queue backlog cannot leak into the
    next rate — every point starts from an idle service.
    """
    params = ctx.params
    spec = ModelSpec(
        model=str(params["model"]),
        scale=None if params.get("scale") is None else float(params["scale"]),
        seed=None if params.get("seed") is None else int(params["seed"]),
    )
    model = ctx.memo(
        ("serve-model", spec.model, spec.scale, spec.seed),
        lambda: ModelRegistry.build(spec),
    )
    requests = int(params["requests"])
    inputs = synthetic_model_inputs(
        model, batch=requests, seed=int(params.get("input_seed", 1))
    )
    policy = BatchPolicy(
        max_batch=int(params["max_batch"]),
        max_wait_us=float(params["max_wait_us"]),
        queue_depth=int(params["queue_depth"]),
    )

    async def drive() -> dict:
        server = Server(
            [model],
            engine=ctx.engine_name,
            config=ctx.base_config,
            compression=ctx.compression
            if ctx.compression != CompressionConfig()
            else None,
            policy=policy,
            store=ctx.session.store,
            pipeline=bool(params.get("pipeline", True)),
        )
        async with server:
            report = await run_open_loop(
                lambda vector: server.submit(model.name, vector),
                inputs,
                rate_rps=float(point["offered_rps"]),
                seed=ctx.seed,
            )
        return report.record()

    return asyncio.run(drive())


def _render_serve_latency(result: ExperimentResult) -> str:
    return "Serving latency vs offered load (open-loop Poisson arrivals):\n" + format_table(
        ["Offered (rps)", "Done", "Rej", "Throughput (rps)", "p50 (ms)",
         "p99 (ms)", "Mean batch", "Sim lat (us)"],
        [
            [r["offered_rps"], r["completed"], r["rejected"],
             r["throughput_rps"], r["p50_ms"], r["p99_ms"], r["mean_batch"],
             r["sim_latency_us"]]
            for r in result.records
        ],
    )


SERVE_EXPERIMENTS: tuple[Experiment, ...] = (
    Experiment(
        name="serve_latency",
        description="Open-loop serving sweep: p50/p99 latency and throughput vs offered load",
        spec=ExperimentSpec(
            experiment="serve_latency",
            grid={"offered_rps": DEFAULT_RATES},
            params={
                "model": "neuraltalk_lstm",
                "scale": 16,
                "seed": None,
                "requests": 200,
                "input_seed": 1,
                "max_batch": 16,
                "max_wait_us": 1000.0,
                "queue_depth": 256,
                "pipeline": True,
            },
            config={"num_pes": 16},
        ),
        run_point=_serve_latency_point,
        render=_render_serve_latency,
        uses_workloads=False,
    ),
)

for _experiment in SERVE_EXPERIMENTS:
    register_experiment(_experiment)
