"""Optional JIT-compiled kernel tier behind the engine/compressor seams.

This package carries the native (numba ``nopython``) implementations of the
repo's four hottest loops — the broadcast/FIFO cycle recurrence, the
interleaved CSC encode, the k-means assignment/update sweep, and the per-PE
padding tallies — plus the capability probe that decides, at runtime,
whether callers may use them:

* :func:`available` — "could we?": numba imports *and* every kernel passes a
  tiny self-test against its interpreted body (cached after the first call;
  any compile or parity failure silently disables the whole tier).
* :func:`enabled` — "may we?": the ``REPRO_NATIVE`` environment variable,
  read on every call so tests and benchmarks can flip it; ``REPRO_NATIVE=0``
  forces the numpy tier even when numba is installed.
* :func:`use_native` — the one predicate hot paths consult:
  ``enabled() and available()``.

Fallback is graceful and warning-free: when numba is absent (the default
install) importing this package costs one fast submodule import and every
``use_native()`` call is a cached-boolean check, so the numpy tier behaves
exactly as before.  See ``docs/ARCHITECTURE.md`` ("Kernel tier") for the
selection order and how to add a kernel.
"""

from __future__ import annotations

import contextlib
import importlib.util
import os
import warnings
from typing import Any, Iterator

__all__ = [
    "available",
    "enabled",
    "use_native",
    "get",
    "status",
    "numba_version_installed",
    "disabled",
    "reset_probe_cache",
]

#: Environment variable gating the native tier ("0" disables it).
ENV_VAR = "REPRO_NATIVE"

#: Cached outcome of the deep probe (None = not probed yet).
_PROBE_RESULT: bool | None = None


def numba_version_installed() -> str | None:
    """The installed numba version string, or None — *without* importing numba.

    Importing numba costs hundreds of milliseconds; CLI surfaces such as
    ``repro --version`` and ``repro engine list`` only need presence, so this
    checks distribution metadata instead.  :func:`available` does the real
    import (and kernel self-test) lazily, on first actual use.
    """
    if importlib.util.find_spec("numba") is None:
        return None
    try:
        from importlib.metadata import PackageNotFoundError, version

        return version("numba")
    except Exception:  # metadata missing: present but version unknown
        return "unknown"


def _selftest(native: Any) -> bool:
    """Run every JIT kernel on a tiny input and compare with its Python body.

    This is the safety net that keeps the tier *graceful*: a numba that is
    installed but cannot compile (unsupported platform, broken cache dir,
    LLVM mismatch) or — worse — compiles to something that disagrees with
    the interpreted semantics, disables the whole tier instead of corrupting
    results mid-experiment.
    """
    import numpy as np

    py = native.PY_FUNCS

    # Broadcast/FIFO recurrence, single and batched.
    work_t = np.array([[3, 1], [0, 2], [4, 4], [1, 0]], dtype=np.int64)
    if int(native.recurrence_total_single(work_t, 2)) != int(
        py["recurrence_total_single"](work_t, 2)
    ):
        return False
    flat = np.vstack([work_t, work_t[:2]])
    offsets = np.array([0, 4, 6], dtype=np.int64)
    if not np.array_equal(
        native.recurrence_totals_batch(flat, offsets, 2),
        py["recurrence_totals_batch"](flat, offsets, 2),
    ):
        return False

    # Interleaved CSC encode: counts then fill.
    columns = np.array([0, 0, 1, 1, 1], dtype=np.int64)
    rows = np.array([1, 6, 0, 2, 7], dtype=np.int64)
    values = np.array([0.5, -1.0, 2.0, 0.25, 3.0], dtype=np.float64)
    counts, nnz = native.interleaved_group_counts(columns, rows, 2, 2, 1)
    counts_py, nnz_py = py["interleaved_group_counts"](columns, rows, 2, 2, 1)
    if not (np.array_equal(counts, counts_py) and np.array_equal(nnz, nnz_py)):
        return False
    total = int(counts.sum())
    starts = np.zeros(counts.shape[0], dtype=np.int64)
    np.cumsum(counts[:-1], out=starts[1:])
    out_values = np.zeros(total, dtype=np.float64)
    out_runs = np.zeros(total, dtype=np.int64)
    native.interleaved_fill_streams(
        columns, rows, values, starts.copy(), 2, 2, 1, out_values, out_runs
    )
    out_values_py = np.zeros(total, dtype=np.float64)
    out_runs_py = np.zeros(total, dtype=np.int64)
    py["interleaved_fill_streams"](
        columns, rows, values, starts.copy(), 2, 2, 1, out_values_py, out_runs_py
    )
    if not (
        np.array_equal(out_values, out_values_py)
        and np.array_equal(out_runs, out_runs_py)
    ):
        return False

    # Nearest-centroid assignment with a duplicate and a tie in play.
    centroids = np.array([0.0, 1.0, 1.0, 3.0], dtype=np.float64)
    order = np.argsort(centroids, kind="stable").astype(np.int64)
    sorted_centroids = centroids[order]
    probe_values = np.array([-0.5, 0.5, 1.0, 2.0, 4.0], dtype=np.float64)
    got = np.empty(probe_values.shape[0], dtype=np.int64)
    native.nearest_assign(probe_values, sorted_centroids, order, got)
    want = np.empty(probe_values.shape[0], dtype=np.int64)
    py["nearest_assign"](probe_values, sorted_centroids, order, want)
    if not np.array_equal(got, want):
        return False

    # One k-means sweep over a toy histogram.
    unique_values = np.array([-2.0, -1.0, 0.5, 2.0, 2.5], dtype=np.float64)
    weight_counts = np.array([1.0, 2.0, 1.0, 3.0, 1.0], dtype=np.float64)
    weighted = unique_values * weight_counts
    prefix = np.zeros(unique_values.shape[0] + 1, dtype=np.float64)
    np.cumsum(weight_counts, out=prefix[1:])
    seed_centroids = np.array([-1.5, 0.0, 2.25], dtype=np.float64)
    got_centroids = native.kmeans_sweeps(
        unique_values, weight_counts, weighted, prefix, seed_centroids.copy(), 5
    )
    want_centroids = py["kmeans_sweeps"](
        unique_values, weight_counts, weighted, prefix, seed_centroids.copy(), 5
    )
    if not np.array_equal(got_centroids, want_centroids):
        return False

    # Padding tallies over two concatenated PE streams.
    values_concat = np.array([0.0, 1.0, 0.0, 0.0, 2.0, 3.0], dtype=np.float64)
    col_ptrs = np.array([[0, 2, 3], [0, 1, 3]], dtype=np.int64)
    bases = np.array([0, 3], dtype=np.int64)
    got_pad = np.zeros((2, 2), dtype=np.int64)
    native.padding_tallies(values_concat, col_ptrs, bases, got_pad)
    want_pad = np.zeros((2, 2), dtype=np.int64)
    py["padding_tallies"](values_concat, col_ptrs, bases, want_pad)
    return np.array_equal(got_pad, want_pad)


def available() -> bool:
    """Whether the JIT tier can actually run on this machine (cached).

    True only when numba imports *and* every kernel compiles and agrees with
    its interpreted body on the self-test inputs.  The first call in a
    numba-equipped process pays the JIT compile of the probe signatures
    (amortised by ``cache=True`` afterwards); everywhere else this is a
    near-free cached boolean.
    """
    global _PROBE_RESULT
    if _PROBE_RESULT is None:
        try:
            from repro.kernels import native

            if not native.NUMBA_AVAILABLE:
                _PROBE_RESULT = False
            else:
                with warnings.catch_warnings():
                    warnings.simplefilter("ignore")
                    _PROBE_RESULT = bool(_selftest(native))
        except Exception:
            _PROBE_RESULT = False
    return _PROBE_RESULT


def enabled() -> bool:
    """Whether the environment permits the native tier (``REPRO_NATIVE`` != 0).

    Read on every call — tests and benchmarks flip it at runtime.
    """
    return os.environ.get(ENV_VAR, "1") != "0"


def use_native() -> bool:
    """The one predicate hot paths consult before taking a kernel fast path."""
    return enabled() and available()


def get() -> Any:
    """The kernel module whose public names are the JIT dispatchers.

    Only meaningful when :func:`available` is True; callers must consult
    :func:`use_native` first.
    """
    from repro.kernels import native

    return native


def status() -> dict:
    """Backend inventory for CLI surfaces (``engine list``, ``--version``)."""
    numba_version = numba_version_installed()
    is_available = available() if numba_version is not None else False
    from repro.kernels.native import PY_FUNCS

    return {
        "numba": numba_version,
        "available": is_available,
        "enabled": enabled(),
        "active": is_available and enabled(),
        "kernels": sorted(PY_FUNCS),
    }


@contextlib.contextmanager
def disabled() -> Iterator[None]:
    """Force the numpy tier inside the block (sets ``REPRO_NATIVE=0``).

    Used by the perf harness to keep numpy-tier BENCH entries honest on
    numba-equipped machines, and by the backend-parameterized parity suites.
    """
    previous = os.environ.get(ENV_VAR)
    os.environ[ENV_VAR] = "0"
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = previous


def reset_probe_cache() -> None:
    """Forget the cached :func:`available` outcome (test hook)."""
    global _PROBE_RESULT
    _PROBE_RESULT = None
