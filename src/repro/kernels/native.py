"""The nopython kernel bodies of the native tier.

Every kernel here is written as a *plain Python* function over numpy arrays
and scalar arithmetic — no Python objects, no fancy indexing — so that numba
can compile it in ``nopython`` mode.  When numba is importable the public
names are rebound to their JIT-compiled dispatchers at import time; the
original interpreted bodies are retained in :data:`PY_FUNCS` so the parity
suite can pin the kernel *semantics* bit-for-bit against the numpy
implementations even on machines without numba.

Bit-identity contract (enforced by ``tests/test_kernels_native.py`` and the
backend-parameterized hypothesis suites):

* :func:`recurrence_total_single` / :func:`recurrence_totals_batch` — pure
  int64 arithmetic, exactly the per-broadcast recurrence of
  ``core/cycle_model.py`` (``t_b = max(t_{b-1} + 1, M_{b-D})``;
  ``done[p] = max(done[p], t_b) + work[p, b]``).
* :func:`interleaved_group_counts` / :func:`interleaved_fill_streams` — the
  relative-indexed interleaved CSC encode of ``compression/csc.py``: entries
  visit each (PE, column) group in column-major/local-row order, padding
  zeros split gaps longer than ``max_run`` with the same ``gap // (max_run +
  1)`` arithmetic, and values are copied bit-for-bit.
* :func:`nearest_assign` — ``quantization._nearest_centroid_indices``
  semantics including ``np.searchsorted`` insertion, prefer-left on distance
  ties, first-slot-of-run for duplicate centroids and the original-order
  tie-break (assumes finite inputs, like the numpy path's callers).
* :func:`kmeans_sweeps` — the whole Lloyd iteration of
  ``quantization.kmeans_codebook`` over the unique values: the exact-
  comparator binary-searched crossovers, index-ascending float accumulation
  (matching ``np.bincount``'s summation order), the duplicate-centroid
  element-wise fallback, and the ``atol=1e-12`` convergence test.
* :func:`padding_tallies` — per-(PE, column) padding-zero counts over the
  concatenated value streams (integer counting).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "NUMBA_AVAILABLE",
    "NUMBA_VERSION",
    "PY_FUNCS",
    "recurrence_total_single",
    "recurrence_totals_batch",
    "interleaved_group_counts",
    "interleaved_fill_streams",
    "nearest_assign",
    "kmeans_sweeps",
    "padding_tallies",
]

try:  # pragma: no cover - exercised only where numba is installed
    import numba
    from numba import njit, prange

    NUMBA_AVAILABLE = True
    NUMBA_VERSION: str | None = numba.__version__
except ImportError:  # interpreted fallback: keep the bodies importable
    NUMBA_AVAILABLE = False
    NUMBA_VERSION = None
    prange = range


# -- cycle-model broadcast/FIFO recurrence -----------------------------------


def recurrence_total_single(work_t, fifo_depth):
    """Total cycles of one broadcast schedule.

    ``work_t`` is the broadcast-major ``(num_broadcasts, num_pes)`` int64
    work matrix (each row is one broadcast's per-PE entry counts — the
    transpose of the simulator's ``(num_pes, num_broadcasts)`` layout, so
    the inner PE loop walks contiguous memory).
    """
    num_broadcasts, num_pes = work_t.shape
    if num_broadcasts == 0:
        return np.int64(0)
    done = np.zeros(num_pes, dtype=np.int64)
    peaks = np.zeros(num_broadcasts, dtype=np.int64)
    t = np.int64(0)
    for b in range(num_broadcasts):
        t = t + 1
        if b >= fifo_depth:
            m = peaks[b - fifo_depth]
            if m > t:
                t = m
        peak = np.int64(0)
        for p in range(num_pes):
            d = done[p]
            if d < t:
                d = t
            d = d + work_t[b, p]
            done[p] = d
            if d > peak:
                peak = d
        peaks[b] = peak
    return peaks[num_broadcasts - 1]


def recurrence_totals_batch(flat_work, offsets, fifo_depth):
    """Batched recurrence: items are independent, so they run in parallel.

    ``flat_work`` concatenates every item's broadcast-major work matrix along
    axis 0 (``(total_broadcasts, num_pes)`` int64); ``offsets`` has
    ``batch + 1`` entries delimiting each item's slice.  Returns int64 totals
    of shape ``(batch,)`` (0 for zero-length items).
    """
    batch = offsets.shape[0] - 1
    num_pes = flat_work.shape[1]
    totals = np.zeros(batch, dtype=np.int64)
    for item in prange(batch):
        start = offsets[item]
        end = offsets[item + 1]
        num_broadcasts = end - start
        if num_broadcasts > 0:
            done = np.zeros(num_pes, dtype=np.int64)
            peaks = np.zeros(num_broadcasts, dtype=np.int64)
            t = np.int64(0)
            for b in range(num_broadcasts):
                t = t + 1
                if b >= fifo_depth:
                    m = peaks[b - fifo_depth]
                    if m > t:
                        t = m
                peak = np.int64(0)
                row = start + b
                for p in range(num_pes):
                    d = done[p]
                    if d < t:
                        d = t
                    d = d + flat_work[row, p]
                    done[p] = d
                    if d > peak:
                        peak = d
                peaks[b] = peak
            totals[item] = peaks[num_broadcasts - 1]
    return totals


# -- interleaved CSC encode ---------------------------------------------------


def interleaved_group_counts(columns, rows, num_pes, num_cols, max_run):
    """Expanded entry and non-zero counts per flat (PE, column) group.

    ``columns``/``rows`` list the dense non-zeros in column-major order with
    rows ascending within each column (the :func:`_sparse_from_dense`
    contract), both int64.  ``counts[pe * num_cols + col]`` is the number of
    stored entries (true non-zeros plus padding zeros) the encode will emit
    for that group; ``nnz[...]`` only the true non-zeros (so padding per
    group is their difference).  A PE meets its entries per column in order,
    so one ``last column / last local row`` register pair per PE tracks the
    gaps.
    """
    counts = np.zeros(num_pes * num_cols, dtype=np.int64)
    nnz = np.zeros(num_pes * num_cols, dtype=np.int64)
    last_col = np.full(num_pes, -1, dtype=np.int64)
    last_local = np.zeros(num_pes, dtype=np.int64)
    span = max_run + 1
    for i in range(columns.shape[0]):
        col = columns[i]
        row = rows[i]
        pe = row % num_pes
        local = row // num_pes
        if last_col[pe] == col:
            gap = local - last_local[pe] - 1
        else:
            gap = local
            last_col[pe] = col
        last_local[pe] = local
        group = pe * num_cols + col
        counts[group] += gap // span + 1
        nnz[group] += 1
    return counts, nnz


def interleaved_fill_streams(
    columns, rows, values, cursors, num_pes, num_cols, max_run, out_values, out_runs
):
    """Scatter the padded (value, run) streams into their pe-major positions.

    ``cursors`` holds each flat (PE, column) group's next write position
    (initially the exclusive prefix sum of :func:`interleaved_group_counts`)
    and is advanced in place.  For every non-zero, ``gap // (max_run + 1)``
    padding entries ``(0.0, max_run)`` precede the value with its residual
    run — the same arithmetic as the vectorised ``_expand_streams``.
    """
    last_col = np.full(num_pes, -1, dtype=np.int64)
    last_local = np.zeros(num_pes, dtype=np.int64)
    span = max_run + 1
    for i in range(columns.shape[0]):
        col = columns[i]
        row = rows[i]
        pe = row % num_pes
        local = row // num_pes
        if last_col[pe] == col:
            gap = local - last_local[pe] - 1
        else:
            gap = local
            last_col[pe] = col
        last_local[pe] = local
        group = pe * num_cols + col
        position = cursors[group]
        padding = gap // span
        for _ in range(padding):
            out_values[position] = 0.0
            out_runs[position] = max_run
            position += 1
        out_values[position] = values[i]
        out_runs[position] = gap - padding * span
        cursors[group] = position + 1


# -- k-means weight sharing ---------------------------------------------------


def nearest_assign(values, sorted_centroids, order, out):
    """Index of the nearest centroid per value, with ``argmin`` tie-breaks.

    ``sorted_centroids``/``order`` come from one stable argsort of the
    original centroid array (tiny, done by the caller in numpy).  Reproduces
    ``_nearest_centroid_indices`` exactly for finite inputs: searchsorted
    insertion, the closer sorted neighbour wins with ties preferring the
    smaller value, duplicate centroids resolve to the first slot of their
    sorted run, and exact-distance ties between distinct values return the
    smaller original index.
    """
    k = sorted_centroids.shape[0]
    for i in range(values.shape[0]):
        v = values[i]
        low = 0
        high = k
        while low < high:
            mid = (low + high) >> 1
            if sorted_centroids[mid] < v:
                low = mid + 1
            else:
                high = mid
        left = low - 1
        if left < 0:
            left = 0
        right = low
        if right > k - 1:
            right = k - 1
        left_distance = abs(v - sorted_centroids[left])
        right_distance = abs(v - sorted_centroids[right])
        if left_distance <= right_distance:
            chosen = left
            other = right
        else:
            chosen = right
            other = left
        # First sorted slot holding the chosen value (duplicate-run collapse).
        chosen_value = sorted_centroids[chosen]
        low2 = 0
        high2 = chosen
        while low2 < high2:
            mid = (low2 + high2) >> 1
            if sorted_centroids[mid] < chosen_value:
                low2 = mid + 1
            else:
                high2 = mid
        result = order[low2]
        if left_distance == right_distance and (
            sorted_centroids[left] != sorted_centroids[right]
        ):
            other_value = sorted_centroids[other]
            low3 = 0
            high3 = other
            while low3 < high3:
                mid = (low3 + high3) >> 1
                if sorted_centroids[mid] < other_value:
                    low3 = mid + 1
                else:
                    high3 = mid
            alternative = order[low3]
            if alternative < result:
                result = alternative
        out[i] = result


def kmeans_sweeps(
    unique_values, counts, weighted_values, counts_prefix, centroids, max_iterations
):
    """Run the Lloyd iteration of ``kmeans_codebook`` to convergence.

    Operates on the sorted unique values with float64 multiplicities
    (``counts``), their products (``weighted_values``) and the precomputed
    count prefix sums, mutating ``centroids`` (a sorted float64 copy owned by
    the caller) in place and returning it.  Matches the numpy loop bit for
    bit: distinct centroids use the k-1 exact-comparator binary-searched
    crossovers; duplicated centroids fall back to the element-wise nearest
    assignment; per-cluster sums accumulate in ascending index order exactly
    like ``np.bincount``; convergence is ``|new - old| <= 1e-12`` element-wise.
    """
    n = unique_values.shape[0]
    k = centroids.shape[0]
    member_counts = np.empty(k, dtype=np.float64)
    member_sums = np.empty(k, dtype=np.float64)
    bounds = np.empty(k + 1, dtype=np.int64)
    for _ in range(max_iterations):
        has_duplicates = False
        for c in range(k - 1):
            if centroids[c + 1] == centroids[c]:
                has_duplicates = True
                break
        for c in range(k):
            member_counts[c] = 0.0
            member_sums[c] = 0.0
        if has_duplicates:
            # Element-wise nearest over the (sorted) centroids; the stable
            # sort order of an already-sorted array is the identity, so the
            # original-index mapping is a no-op here.
            for i in range(n):
                v = unique_values[i]
                low = 0
                high = k
                while low < high:
                    mid = (low + high) >> 1
                    if centroids[mid] < v:
                        low = mid + 1
                    else:
                        high = mid
                left = low - 1
                if left < 0:
                    left = 0
                right = low
                if right > k - 1:
                    right = k - 1
                if abs(v - centroids[left]) <= abs(v - centroids[right]):
                    chosen = left
                else:
                    chosen = right
                chosen_value = centroids[chosen]
                low2 = 0
                high2 = chosen
                while low2 < high2:
                    mid = (low2 + high2) >> 1
                    if centroids[mid] < chosen_value:
                        low2 = mid + 1
                    else:
                        high2 = mid
                member_counts[low2] += counts[i]
                member_sums[low2] += weighted_values[i]
        else:
            bounds[0] = 0
            bounds[k] = n
            segment_start = 0
            for c in range(k - 1):
                left_c = centroids[c]
                right_c = centroids[c + 1]
                low = segment_start
                high = n
                while low < high:
                    mid = (low + high) // 2
                    v = unique_values[mid]
                    if abs(v - left_c) <= abs(v - right_c):
                        low = mid + 1
                    else:
                        high = mid
                bounds[c + 1] = low
                segment_start = low
            for c in range(k):
                member_counts[c] = (
                    counts_prefix[bounds[c + 1]] - counts_prefix[bounds[c]]
                )
                total = 0.0
                for i in range(bounds[c], bounds[c + 1]):
                    total = total + weighted_values[i]
                member_sums[c] = total
        new_centroids = np.empty(k, dtype=np.float64)
        for c in range(k):
            if member_counts[c] > 0.0:
                new_centroids[c] = member_sums[c] / member_counts[c]
            else:
                new_centroids[c] = centroids[c]
        new_centroids = np.sort(new_centroids)
        converged = True
        for c in range(k):
            if not (abs(new_centroids[c] - centroids[c]) <= 1e-12):
                converged = False
                break
        for c in range(k):
            centroids[c] = new_centroids[c]
        if converged:
            break
    return centroids


# -- per-(PE, column) padding tallies ----------------------------------------


def padding_tallies(values_concat, col_ptrs, bases, out):
    """Padding-zero entries per (PE, column) over the concatenated streams.

    ``values_concat`` joins every PE's value stream in PE order;
    ``col_ptrs`` is the ``(num_pes, num_cols + 1)`` stack of per-PE column
    pointers and ``bases[pe]`` each PE's offset into the concatenation.  PEs
    are independent, so they tally in parallel.
    """
    num_pes = col_ptrs.shape[0]
    num_cols = col_ptrs.shape[1] - 1
    for pe in prange(num_pes):
        base = bases[pe]
        for col in range(num_cols):
            tally = np.int64(0)
            for j in range(col_ptrs[pe, col], col_ptrs[pe, col + 1]):
                if values_concat[base + j] == 0.0:
                    tally += 1
            out[pe, col] = tally


#: The interpreted kernel bodies, retained for numba-free parity testing.
PY_FUNCS = {
    "recurrence_total_single": recurrence_total_single,
    "recurrence_totals_batch": recurrence_totals_batch,
    "interleaved_group_counts": interleaved_group_counts,
    "interleaved_fill_streams": interleaved_fill_streams,
    "nearest_assign": nearest_assign,
    "kmeans_sweeps": kmeans_sweeps,
    "padding_tallies": padding_tallies,
}

if NUMBA_AVAILABLE:  # pragma: no cover - exercised only where numba is installed
    _sequential = njit(cache=True, nogil=True)
    _parallel = njit(cache=True, nogil=True, parallel=True)
    recurrence_total_single = _sequential(recurrence_total_single)
    recurrence_totals_batch = _parallel(recurrence_totals_batch)
    interleaved_group_counts = _sequential(interleaved_group_counts)
    interleaved_fill_streams = _sequential(interleaved_fill_streams)
    nearest_assign = _sequential(nearest_assign)
    kmeans_sweeps = _sequential(kmeans_sweeps)
    padding_tallies = _parallel(padding_tallies)
