"""EIE hardware configuration.

The defaults reproduce the design point evaluated in the paper: 64 PEs at
800 MHz in 45 nm, an 8-deep activation FIFO, a 64-bit Spmat SRAM interface,
4-bit weights and indices, 16-bit fixed-point arithmetic, 128 KB Spmat SRAM,
32 KB pointer SRAM and 2 KB activation SRAM per PE, 64-entry source and
destination activation register files, and a 4-stage pipeline per activation
update.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Any, Mapping

from repro.errors import ConfigurationError
from repro.hardware.sram import SramConfig
from repro.utils.validation import require_positive, require_power_of_two

__all__ = ["EIEConfig"]


@dataclass(frozen=True)
class EIEConfig:
    """Parameters of one EIE instance.

    Attributes:
        num_pes: number of processing elements (the paper evaluates 1-256).
        fifo_depth: depth of the per-PE activation queue (8 in the paper).
        clock_mhz: PE clock frequency.
        weight_bits: bits per encoded (virtual) weight.
        index_bits: bits per relative (zero-run) index.
        pointer_bits: bits per column pointer.
        activation_bits: fixed-point width of activations and accumulators.
        spmat_sram_width_bits: read width of the sparse-matrix SRAM.
        spmat_sram_kb: capacity of the sparse-matrix SRAM per PE.
        ptr_sram_kb: capacity of the pointer SRAM per PE (two banks).
        act_sram_kb: capacity of the activation SRAM per PE.
        act_regfile_entries: entries in each activation register file.
        pipeline_stages: pipeline depth of one activation update.
    """

    num_pes: int = 64
    fifo_depth: int = 8
    clock_mhz: float = 800.0
    weight_bits: int = 4
    index_bits: int = 4
    pointer_bits: int = 16
    activation_bits: int = 16
    spmat_sram_width_bits: int = 64
    spmat_sram_kb: float = 128.0
    ptr_sram_kb: float = 32.0
    act_sram_kb: float = 2.0
    act_regfile_entries: int = 64
    pipeline_stages: int = 4

    def __post_init__(self) -> None:
        require_positive("num_pes", self.num_pes)
        require_positive("fifo_depth", self.fifo_depth)
        require_positive("clock_mhz", self.clock_mhz)
        require_positive("weight_bits", self.weight_bits)
        require_positive("index_bits", self.index_bits)
        require_positive("pointer_bits", self.pointer_bits)
        require_positive("activation_bits", self.activation_bits)
        require_power_of_two("spmat_sram_width_bits", self.spmat_sram_width_bits)
        require_positive("spmat_sram_kb", self.spmat_sram_kb)
        require_positive("ptr_sram_kb", self.ptr_sram_kb)
        require_positive("act_sram_kb", self.act_sram_kb)
        require_positive("act_regfile_entries", self.act_regfile_entries)
        require_positive("pipeline_stages", self.pipeline_stages)
        if self.spmat_sram_width_bits < self.entry_bits:
            raise ConfigurationError(
                "spmat_sram_width_bits must hold at least one (weight, index) entry"
            )

    # -- derived quantities ----------------------------------------------------

    @property
    def max_run(self) -> int:
        """Largest zero run the relative index can represent."""
        return 2**self.index_bits - 1

    @property
    def codebook_entries(self) -> int:
        """Number of shared-weight codebook entries."""
        return 2**self.weight_bits

    @property
    def entry_bits(self) -> int:
        """Bits per stored (weight, index) pair (8 in the paper)."""
        return self.weight_bits + self.index_bits

    @property
    def entries_per_spmat_read(self) -> int:
        """Encoded entries delivered by one Spmat SRAM read (8 in the paper)."""
        return self.spmat_sram_width_bits // self.entry_bits

    @property
    def weights_per_pe_capacity(self) -> int:
        """Encoded entries one PE's Spmat SRAM can hold (131 K in the paper)."""
        return int(self.spmat_sram_kb * 1024 * 8) // self.entry_bits

    @property
    def total_weight_capacity(self) -> int:
        """Encoded entries the whole accelerator can hold."""
        return self.weights_per_pe_capacity * self.num_pes

    @property
    def dense_weight_capacity(self) -> int:
        """Dense-equivalent weights at 10% density (the paper's 1.2 M per PE)."""
        return self.weights_per_pe_capacity * 10

    @property
    def clock_hz(self) -> float:
        """Clock frequency in hertz."""
        return self.clock_mhz * 1e6

    @property
    def cycle_time_ns(self) -> float:
        """Clock period in nanoseconds."""
        return 1e3 / self.clock_mhz

    @property
    def peak_macs_per_second(self) -> float:
        """Peak multiply-accumulates per second (one per PE per cycle)."""
        return self.num_pes * self.clock_hz

    @property
    def peak_gops(self) -> float:
        """Peak GOP/s counting multiply and add separately (102 for 64 PEs)."""
        return 2.0 * self.peak_macs_per_second / 1e9

    @property
    def activation_capacity(self) -> int:
        """Activation-vector length the register files cover across all PEs."""
        return self.act_regfile_entries * self.num_pes

    # -- SRAM bank configurations ----------------------------------------------

    def spmat_sram(self) -> SramConfig:
        """Geometry of the sparse-matrix SRAM."""
        return SramConfig(
            capacity_kb=self.spmat_sram_kb,
            width_bits=self.spmat_sram_width_bits,
            name="spmat",
        )

    def ptr_sram(self) -> SramConfig:
        """Geometry of one pointer SRAM bank (two banks per PE)."""
        return SramConfig(
            capacity_kb=self.ptr_sram_kb / 2,
            width_bits=max(self.pointer_bits, 16),
            name="ptr",
        )

    def act_sram(self) -> SramConfig:
        """Geometry of the activation SRAM."""
        return SramConfig(
            capacity_kb=self.act_sram_kb,
            width_bits=max(self.activation_bits, 16),
            name="act",
        )

    # -- (de)serialization -------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """All configuration fields as a plain JSON-serializable mapping."""
        return {spec.name: getattr(self, spec.name) for spec in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EIEConfig":
        """Build a configuration from a (possibly partial) field mapping.

        Missing fields take their defaults; unknown keys are rejected with a
        :class:`ConfigurationError` naming the offending key, so a typo in an
        experiment spec fails loudly instead of silently using the default.
        """
        known = {spec.name for spec in fields(cls)}
        for key in data:
            if key not in known:
                raise ConfigurationError(
                    f"EIEConfig has no field {key!r}; valid fields: {', '.join(sorted(known))}"
                )
        return cls(**dict(data))

    # -- convenience -------------------------------------------------------------

    def with_pes(self, num_pes: int) -> "EIEConfig":
        """Copy of this configuration with a different PE count."""
        return replace(self, num_pes=num_pes)

    def with_fifo_depth(self, fifo_depth: int) -> "EIEConfig":
        """Copy of this configuration with a different activation FIFO depth."""
        return replace(self, fifo_depth=fifo_depth)

    def with_spmat_width(self, width_bits: int) -> "EIEConfig":
        """Copy of this configuration with a different Spmat SRAM width."""
        return replace(self, spmat_sram_width_bits=width_bits)
