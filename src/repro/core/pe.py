"""Functional model of one EIE processing element.

A PE owns every matrix row ``i`` with ``i mod N == pe_id`` and stores its
slice of each column in relative-indexed CSC form (values are 4-bit codebook
indices).  When the central control unit broadcasts a non-zero input
activation ``a_j`` with its column index ``j``, the PE:

1. reads the start and end pointers ``p_j`` and ``p_{j+1}`` from the pointer
   SRAM (two banks so both can be read in one cycle);
2. streams its slice of column ``j`` from the sparse-matrix SRAM, eight
   (weight, index) entries per 64-bit read;
3. expands each 4-bit virtual weight through the codebook to a 16-bit value
   and accumulates ``b_x += S[I] * a_j`` into the destination activation
   register selected by the running sum of the relative indices;
4. applies ReLU and swaps source/destination register files at the end of the
   layer.

This class is the *functional* model: it performs the exact arithmetic and
counts the memory accesses, but does not model timing (see
:mod:`repro.core.cycle_model` for that).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.compression.csc import CSCMatrix
from repro.compression.quantization import WeightCodebook
from repro.core.config import EIEConfig
from repro.errors import SimulationError
from repro.nn.fixed_point import FixedPointFormat

__all__ = ["ProcessingElement", "PEAccessCounters"]


@dataclass
class PEAccessCounters:
    """Memory-access and arithmetic counters accumulated by one PE."""

    ptr_sram_reads: int = 0
    spmat_sram_reads: int = 0
    act_reg_reads: int = 0
    act_reg_writes: int = 0
    codebook_lookups: int = 0
    macs: int = 0
    entries_processed: int = 0
    padding_entries_processed: int = 0
    columns_skipped: int = 0

    def merge(self, other: "PEAccessCounters") -> "PEAccessCounters":
        """Return the element-wise sum of two counter sets."""
        return PEAccessCounters(
            ptr_sram_reads=self.ptr_sram_reads + other.ptr_sram_reads,
            spmat_sram_reads=self.spmat_sram_reads + other.spmat_sram_reads,
            act_reg_reads=self.act_reg_reads + other.act_reg_reads,
            act_reg_writes=self.act_reg_writes + other.act_reg_writes,
            codebook_lookups=self.codebook_lookups + other.codebook_lookups,
            macs=self.macs + other.macs,
            entries_processed=self.entries_processed + other.entries_processed,
            padding_entries_processed=(
                self.padding_entries_processed + other.padding_entries_processed
            ),
            columns_skipped=self.columns_skipped + other.columns_skipped,
        )


class ProcessingElement:
    """One EIE PE: local CSC slice, codebook, accumulators and counters.

    Args:
        pe_id: index of this PE in ``[0, num_pes)``.
        slice_matrix: this PE's CSC slice; values are codebook indices.
        codebook: the shared-weight table used by the weight decoder.
        num_pes: total number of PEs in the array.
        config: accelerator configuration (SRAM widths, precisions).
        fixed_point: optional fixed-point format applied to weights and
            products; ``None`` computes in float64.
    """

    def __init__(
        self,
        pe_id: int,
        slice_matrix: CSCMatrix,
        codebook: WeightCodebook,
        num_pes: int,
        config: EIEConfig | None = None,
        fixed_point: FixedPointFormat | None = None,
    ) -> None:
        if not 0 <= pe_id < num_pes:
            raise SimulationError(f"pe_id {pe_id} out of range for {num_pes} PEs")
        self.pe_id = int(pe_id)
        self.num_pes = int(num_pes)
        self.slice_matrix = slice_matrix
        self.codebook = codebook
        self.config = config or EIEConfig(num_pes=num_pes)
        self.fixed_point = fixed_point
        self._weights = codebook.centroids.copy()
        if fixed_point is not None:
            self._weights = fixed_point.quantize(self._weights)
        self.accumulators = np.zeros(slice_matrix.num_rows, dtype=np.float64)
        self.counters = PEAccessCounters()

    # -- layer lifecycle ---------------------------------------------------------

    @property
    def local_rows(self) -> int:
        """Number of output rows this PE owns."""
        return self.slice_matrix.num_rows

    def reset(self) -> None:
        """Clear accumulators (done before each layer) and counters."""
        self.accumulators[:] = 0.0
        self.counters = PEAccessCounters()

    def stored_entries(self) -> int:
        """Total encoded entries stored in this PE's Spmat SRAM."""
        return self.slice_matrix.num_entries

    def check_capacity(self) -> None:
        """Raise if the slice does not fit in the configured Spmat SRAM."""
        if self.stored_entries() > self.config.weights_per_pe_capacity:
            raise SimulationError(
                f"PE {self.pe_id} stores {self.stored_entries()} entries but the "
                f"Spmat SRAM holds only {self.config.weights_per_pe_capacity}"
            )

    # -- computation ----------------------------------------------------------------

    def process_activation(self, column: int, value: float) -> int:
        """Consume one broadcast activation; returns the entries processed.

        Models the pointer read, the sparse-matrix reads, the codebook
        expansion and the multiply-accumulate for this PE's slice of
        ``column``, scaled by the activation ``value``.
        """
        if not 0 <= column < self.slice_matrix.num_cols:
            raise SimulationError(
                f"column {column} out of range [0, {self.slice_matrix.num_cols})"
            )
        if value == 0.0:
            raise SimulationError("zero activations must never be broadcast")
        # Pointer read: p_j and p_{j+1} from the two pointer banks (one access each).
        self.counters.ptr_sram_reads += 2
        indices, runs = self.slice_matrix.column_entries(column)
        if indices.shape[0] == 0:
            self.counters.columns_skipped += 1
            return 0
        # Sparse-matrix reads: entries are packed entries_per_spmat_read per row.
        per_read = self.config.entries_per_spmat_read
        self.counters.spmat_sram_reads += int(np.ceil(indices.shape[0] / per_read))
        # Walk the entries, maintaining the running row position.
        positions = np.cumsum(runs + 1) - 1
        weights = self._weights[indices.astype(np.int64)]
        contribution = weights * value
        if self.fixed_point is not None:
            contribution = self.fixed_point.quantize(contribution)
        np.add.at(self.accumulators, positions, contribution)
        if self.fixed_point is not None:
            self.accumulators[positions] = self.fixed_point.quantize(self.accumulators[positions])
        entry_count = int(indices.shape[0])
        padding = int(np.count_nonzero(indices == self.codebook.zero_index))
        self.counters.codebook_lookups += entry_count
        self.counters.macs += entry_count
        self.counters.entries_processed += entry_count
        self.counters.padding_entries_processed += padding
        self.counters.act_reg_reads += entry_count
        self.counters.act_reg_writes += entry_count
        return entry_count

    def read_outputs(self) -> np.ndarray:
        """Return this PE's accumulator (destination register file) contents."""
        return self.accumulators.copy()

    def global_output_indices(self) -> np.ndarray:
        """Dense row index of each local accumulator entry."""
        return np.arange(self.local_rows, dtype=np.int64) * self.num_pes + self.pe_id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ProcessingElement(pe_id={self.pe_id}, rows={self.local_rows}, "
            f"entries={self.stored_entries()})"
        )
