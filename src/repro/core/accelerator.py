"""User-facing EIE accelerator facade.

:class:`EIEAccelerator` bundles the pieces a user of the library needs to go
from a dense weight matrix to EIE performance and energy numbers:

* it compresses layers with the Deep Compression pipeline and loads them into
  the PE array (the CCU's I/O mode);
* :meth:`EIEAccelerator.run` performs functionally exact inference through the
  loaded layers (multi-layer feed-forward, source/destination register files
  swapping between layers, as Section IV describes);
* :meth:`EIEAccelerator.estimate_layer` combines the cycle-level timing model
  with the energy and area models to produce the per-layer latency, power and
  energy numbers reported in Table IV, Figure 6 and Figure 7.

All simulation goes through the :mod:`repro.engine` seam: the facade owns a
:class:`~repro.engine.session.Session`, so repeated calls on the same layer
reuse the cached compressed form, the prepared PE array of the
``"functional"`` engine and the prepared work matrices of the ``"cycle"``
engine instead of rebuilding them per call.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.compression.pipeline import CompressedLayer, CompressionConfig
from repro.core.config import EIEConfig
from repro.core.cycle_model import CycleStats
from repro.core.functional import FunctionalResult
from repro.core.stats import EnergyStats, PerformanceStats
from repro.engine.session import Session
from repro.errors import SimulationError
from repro.hardware.area import chip_area_mm2, chip_power_w
from repro.hardware.energy import EnergyModel
from repro.hardware.sram import sram_read_energy_pj
from repro.utils.validation import require_matrix, require_vector

__all__ = ["LayerEstimate", "EIEAccelerator"]


@dataclass
class LayerEstimate:
    """Performance and energy estimate for one layer on the accelerator.

    Attributes:
        layer_name: label of the estimated layer.
        cycles: cycle-level timing statistics.
        performance: throughput/latency summary.
        energy: energy/power summary.
        functional: optional functional-run result (access counters).
    """

    layer_name: str
    cycles: CycleStats
    performance: PerformanceStats
    energy: EnergyStats
    functional: FunctionalResult | None = None


class EIEAccelerator:
    """The full accelerator: compression, functional execution and estimation."""

    def __init__(
        self,
        config: EIEConfig | None = None,
        compression: CompressionConfig | None = None,
        session: Session | None = None,
    ) -> None:
        self.config = config or EIEConfig()
        if session is not None and compression is not None:
            raise SimulationError(
                "pass either a compression configuration or a ready session, not both"
            )
        self.session = session or Session(compression, config=self.config)
        self.compressor = self.session.compressor
        self.energy_model = EnergyModel(precision="int16")
        self.layers: list[CompressedLayer] = []

    # -- loading -------------------------------------------------------------------

    def load_compressed_layer(self, layer: CompressedLayer) -> CompressedLayer:
        """Load an already compressed layer (checks interleaving and capacity)."""
        if layer.num_pes != self.config.num_pes:
            raise SimulationError(
                f"layer {layer.name!r} is interleaved over {layer.num_pes} PEs but the "
                f"accelerator has {self.config.num_pes}"
            )
        per_pe_entries = layer.storage.entries_per_pe()
        if per_pe_entries.size and per_pe_entries.max() > self.config.weights_per_pe_capacity:
            raise SimulationError(
                f"layer {layer.name!r} needs {int(per_pe_entries.max())} entries in one PE, "
                f"exceeding the Spmat SRAM capacity of {self.config.weights_per_pe_capacity}"
            )
        if self.layers and self.layers[-1].rows != layer.cols:
            raise SimulationError(
                f"layer {layer.name!r} input size {layer.cols} does not match the previous "
                f"layer's output size {self.layers[-1].rows}"
            )
        self.layers.append(layer)
        return layer

    def compress_and_load(
        self,
        weights: np.ndarray,
        name: str = "layer",
        activation_name: str = "relu",
    ) -> CompressedLayer:
        """Compress a dense weight matrix and load it as the next layer.

        Compression goes through the session cache: reloading a matrix this
        session has already compressed (same parameters) is free.
        """
        weights = require_matrix("weights", weights)
        layer = self.session.compress(
            weights, num_pes=self.config.num_pes, name=name, activation_name=activation_name
        )
        return self.load_compressed_layer(layer)

    def clear(self) -> None:
        """Unload all layers."""
        self.layers = []

    # -- functional execution ----------------------------------------------------------

    def run_layer(self, layer_index: int, activations: np.ndarray) -> FunctionalResult:
        """Functionally run one loaded layer on ``activations``."""
        if not 0 <= layer_index < len(self.layers):
            raise SimulationError(f"layer index {layer_index} out of range")
        activations = require_vector("activations", activations)
        result = self.session.run(
            "functional", self.layers[layer_index], activations, config=self.config
        )
        return result.functional[0]

    def run(self, activations: np.ndarray) -> list[FunctionalResult]:
        """Run all loaded layers in sequence (multi-layer feed-forward).

        The output activation register file of one layer becomes the source
        register file of the next, so no data movement is modelled between
        layers.  Returns the per-layer results; the last one holds the
        network output.
        """
        if not self.layers:
            raise SimulationError("no layers loaded")
        activations = require_vector("activations", activations)
        results: list[FunctionalResult] = []
        current = np.asarray(activations, dtype=np.float64)
        for index in range(len(self.layers)):
            result = self.run_layer(index, current)
            results.append(result)
            current = result.output
        return results

    def run_batch(self, activations: np.ndarray) -> np.ndarray:
        """Feed a ``(batch, n_in)`` activation matrix through all layers.

        Each row is one independent inference; every layer's prepared PE
        array is built once (session cache) and reused across the batch.
        Returns the ``(batch, n_out)`` network outputs.
        """
        if not self.layers:
            raise SimulationError("no layers loaded")
        current = np.asarray(require_matrix("activations", activations), dtype=np.float64)
        for layer in self.layers:
            result = self.session.run("functional", layer, current, config=self.config)
            current = result.outputs
        return current

    # -- performance / energy estimation -------------------------------------------------

    @property
    def chip_power_w(self) -> float:
        """Total chip power (PEs plus LNZD tree)."""
        return chip_power_w(self.config.num_pes)

    @property
    def chip_area_mm2(self) -> float:
        """Total chip area (PEs plus LNZD tree)."""
        return chip_area_mm2(self.config.num_pes)

    def estimate_layer(
        self,
        layer: CompressedLayer,
        activations: np.ndarray,
        run_functional: bool = True,
    ) -> LayerEstimate:
        """Estimate latency, throughput and energy of ``layer`` on ``activations``."""
        activations = require_vector("activations", activations)
        cycles = self.session.run("cycle", layer, activations, config=self.config).stats
        dense_macs = layer.dense_weight_count
        performance = cycles.performance(dense_macs)
        functional: FunctionalResult | None = None
        if run_functional:
            functional = self.session.run(
                "functional", layer, activations, config=self.config
            ).functional[0]
            energy = self._energy_from_counters(functional, cycles)
        else:
            energy = self._energy_from_cycles(cycles)
        return LayerEstimate(
            layer_name=layer.name,
            cycles=cycles,
            performance=performance,
            energy=energy,
            functional=functional,
        )

    def _energy_from_counters(
        self, functional: FunctionalResult, cycles: CycleStats
    ) -> EnergyStats:
        """Bottom-up energy: SRAM accesses and arithmetic from the counters."""
        counters = functional.counters
        spmat_pj = counters.spmat_sram_reads * sram_read_energy_pj(
            self.config.spmat_sram_width_bits, self.config.spmat_sram_kb
        )
        ptr_pj = counters.ptr_sram_reads * sram_read_energy_pj(
            max(self.config.pointer_bits, 16), self.config.ptr_sram_kb / 2
        )
        act_pj = (counters.act_reg_reads + counters.act_reg_writes) * 0.1
        mac_pj = counters.macs * self.energy_model.mac_energy_pj()
        breakdown_pj = {
            "spmat_sram": spmat_pj,
            "ptr_sram": ptr_pj,
            "act_regs": act_pj,
            "arithmetic": mac_pj,
        }
        dynamic_j = sum(breakdown_pj.values()) * 1e-12
        # Clock / leakage overhead: the chip draws its rated power for the
        # duration of the layer; use the larger of the two estimates so short
        # layers are not credited with unrealistically low energy.
        power_based_j = self.chip_power_w * cycles.time_s
        energy_j = max(dynamic_j, power_based_j)
        return EnergyStats(
            energy_j=energy_j,
            power_w=self.chip_power_w,
            breakdown={name: value * 1e-12 for name, value in breakdown_pj.items()},
        )

    def _energy_from_cycles(self, cycles: CycleStats) -> EnergyStats:
        """Top-down energy: chip power times execution time."""
        return EnergyStats(
            energy_j=self.chip_power_w * cycles.time_s,
            power_w=self.chip_power_w,
            breakdown={},
        )
