"""I/O-mode cost model: loading weights and activations into the PE SRAMs.

In the CCU's I/O mode all PEs are idle while a DMA engine connected to the
central unit writes the compressed weights, pointers and (for the first
layer) activations into the per-PE SRAMs.  The paper treats this as a
one-time cost per network ("This is one time cost"), which is why it does not
appear in the per-frame Table IV numbers; this module quantifies that cost so
users can reason about it, and also models the activation-SRAM batching that
Section IV describes for input vectors longer than the 64-entry-per-PE
register files (e.g. VGG-16's FC6 with 25088 inputs).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.compression.pipeline import CompressedLayer
from repro.core.config import EIEConfig
from repro.errors import ConfigurationError
from repro.utils.validation import require_positive

__all__ = ["DMAModel", "LoadCost", "activation_batches", "activation_sram_overhead_cycles"]


@dataclass(frozen=True)
class LoadCost:
    """Cost of loading one compressed layer over DMA.

    Attributes:
        bytes_transferred: total bytes moved into the PE SRAMs.
        transfer_time_s: wall-clock seconds at the DMA bandwidth.
        cycles: equivalent accelerator cycles at the configured clock.
    """

    bytes_transferred: int
    transfer_time_s: float
    cycles: int

    def amortized_over(self, inferences: int) -> float:
        """Seconds of load time charged to each of ``inferences`` inferences."""
        if inferences < 1:
            raise ConfigurationError(f"inferences must be >= 1, got {inferences}")
        return self.transfer_time_s / inferences


@dataclass(frozen=True)
class DMAModel:
    """A simple bandwidth-bound DMA channel between the host and the CCU.

    Attributes:
        bandwidth_gbs: sustained DMA bandwidth in gigabytes per second
            (a PCIe-3 x4-class link by default).
    """

    bandwidth_gbs: float = 4.0

    def __post_init__(self) -> None:
        require_positive("bandwidth_gbs", self.bandwidth_gbs)

    def layer_load_cost(self, layer: CompressedLayer, config: EIEConfig | None = None) -> LoadCost:
        """Cost of writing ``layer``'s compressed storage into the PE SRAMs."""
        config = config or EIEConfig(num_pes=layer.num_pes)
        total_bits = layer.storage_bits(pointer_bits=config.pointer_bits)
        bytes_transferred = math.ceil(total_bits / 8)
        transfer_time_s = bytes_transferred / (self.bandwidth_gbs * 1e9)
        cycles = math.ceil(transfer_time_s * config.clock_hz)
        return LoadCost(
            bytes_transferred=bytes_transferred,
            transfer_time_s=transfer_time_s,
            cycles=cycles,
        )

    def network_load_cost(
        self, layers: list[CompressedLayer], config: EIEConfig | None = None
    ) -> LoadCost:
        """Aggregate load cost of a multi-layer network."""
        if not layers:
            raise ConfigurationError("network_load_cost needs at least one layer")
        costs = [self.layer_load_cost(layer, config) for layer in layers]
        total_bytes = sum(cost.bytes_transferred for cost in costs)
        total_time = sum(cost.transfer_time_s for cost in costs)
        total_cycles = sum(cost.cycles for cost in costs)
        return LoadCost(
            bytes_transferred=total_bytes, transfer_time_s=total_time, cycles=total_cycles
        )


def activation_batches(vector_length: int, config: EIEConfig) -> int:
    """Number of register-file-sized batches needed for an input vector.

    The activation register files across all PEs hold
    ``config.activation_capacity`` values (4K in the paper's configuration);
    longer vectors — e.g. VGG-16 FC6's 25088 inputs — are processed in
    batches, with the activation SRAM holding the overflow.
    """
    if vector_length < 1:
        raise ConfigurationError(f"vector_length must be >= 1, got {vector_length}")
    return math.ceil(vector_length / config.activation_capacity)


def activation_sram_overhead_cycles(vector_length: int, config: EIEConfig) -> int:
    """Extra cycles spent spilling/filling the activation SRAM between batches.

    The SRAM is read at the start and written at the end of each batch beyond
    the first; each transfer moves one register file worth of activations per
    PE through the (activation-width) SRAM port, one value per PE per cycle.
    """
    batches = activation_batches(vector_length, config)
    if batches <= 1:
        return 0
    transfers_per_batch = 2  # read sources at the start, write destinations at the end
    return (batches - 1) * transfers_per_batch * config.act_regfile_entries
