"""The per-PE activation FIFO queue.

Non-zero input activations and their column indices are broadcast by the
central control unit into an activation queue in each PE.  The queue lets a
PE that happens to have few non-zeros in the current column run ahead,
absorbing the load imbalance between PEs; the broadcast stalls whenever any
PE's queue is full.  Figure 8 of the paper sweeps the queue depth and picks 8.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.errors import SimulationError

__all__ = ["QueueEntry", "ActivationQueue"]


@dataclass(frozen=True)
class QueueEntry:
    """One broadcast item: a non-zero activation value and its column index."""

    column: int
    value: float


class ActivationQueue:
    """A bounded FIFO of :class:`QueueEntry` items with occupancy statistics."""

    def __init__(self, depth: int) -> None:
        if depth < 1:
            raise SimulationError(f"queue depth must be >= 1, got {depth}")
        self.depth = int(depth)
        self._entries: deque[QueueEntry] = deque()
        self.total_pushes = 0
        self.total_pops = 0
        self.full_stalls = 0

    # -- state ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def is_empty(self) -> bool:
        """True when no work is queued."""
        return not self._entries

    @property
    def is_full(self) -> bool:
        """True when the queue cannot accept another broadcast."""
        return len(self._entries) >= self.depth

    @property
    def occupancy(self) -> int:
        """Current number of queued entries."""
        return len(self._entries)

    # -- operations ----------------------------------------------------------------

    def push(self, entry: QueueEntry) -> None:
        """Enqueue a broadcast activation; raises if the queue is full."""
        if self.is_full:
            self.full_stalls += 1
            raise SimulationError("activation queue overflow: broadcast while full")
        self._entries.append(entry)
        self.total_pushes += 1

    def try_push(self, entry: QueueEntry) -> bool:
        """Enqueue if space is available; returns whether the push happened."""
        if self.is_full:
            self.full_stalls += 1
            return False
        self._entries.append(entry)
        self.total_pushes += 1
        return True

    def peek(self) -> QueueEntry:
        """The entry at the head of the queue (the one being processed)."""
        if self.is_empty:
            raise SimulationError("cannot peek an empty activation queue")
        return self._entries[0]

    def pop(self) -> QueueEntry:
        """Dequeue the head entry once the PE has consumed it."""
        if self.is_empty:
            raise SimulationError("cannot pop an empty activation queue")
        self.total_pops += 1
        return self._entries.popleft()

    def clear(self) -> None:
        """Drop all queued entries and reset statistics."""
        self._entries.clear()
        self.total_pushes = 0
        self.total_pops = 0
        self.full_stalls = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ActivationQueue(depth={self.depth}, occupancy={self.occupancy})"
