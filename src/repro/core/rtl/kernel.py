"""A minimal synchronous-circuit simulation kernel.

Modules implement two methods, mirroring the paper's simulator design:

* :meth:`Module.propagate` — combinational logic: compute next-state and
  drive output wires from the current register values and input wires;
* :meth:`Module.update` — the flip-flop: latch the next-state into the
  registers at the clock edge.

The :class:`Simulator` calls ``propagate`` on every module (repeatedly, until
the wire values reach a fixed point, so module ordering does not matter) and
then ``update`` on every module, once per clock cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.errors import SimulationError

__all__ = ["Wire", "Register", "Module", "Simulator"]


class Wire:
    """A named combinational signal driven during the propagate phase."""

    def __init__(self, name: str, initial: Any = 0) -> None:
        self.name = name
        self.value = initial

    def drive(self, value: Any) -> None:
        """Set the wire's value for the current cycle."""
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Wire({self.name}={self.value!r})"


class Register:
    """A clocked state element: reads return the value latched last cycle."""

    def __init__(self, name: str, initial: Any = 0) -> None:
        self.name = name
        self.value = initial
        self._next = initial
        self._written = False

    def read(self) -> Any:
        """Current (latched) value."""
        return self.value

    def write(self, value: Any) -> None:
        """Schedule ``value`` to be latched at the next clock edge."""
        self._next = value
        self._written = True

    def tick(self) -> None:
        """Latch the scheduled value (called by the simulator)."""
        if self._written:
            self.value = self._next
            self._written = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Register({self.name}={self.value!r})"


class Module:
    """Base class for hardware modules.

    Subclasses declare their registers via :meth:`add_register` (so the
    simulator can tick them) and implement :meth:`propagate` and, optionally,
    :meth:`update` for behaviour beyond plain register latching.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._registers: list[Register] = []

    def add_register(self, name: str, initial: Any = 0) -> Register:
        """Create a register owned by this module."""
        register = Register(f"{self.name}.{name}", initial)
        self._registers.append(register)
        return register

    @property
    def registers(self) -> list[Register]:
        """Registers owned by this module."""
        return list(self._registers)

    def propagate(self) -> None:
        """Combinational logic: drive wires and schedule register writes."""

    def update(self) -> None:
        """Sequential behaviour beyond register latching (optional)."""

    def _tick_registers(self) -> None:
        for register in self._registers:
            register.tick()


@dataclass
class Simulator:
    """Drives a set of modules cycle by cycle.

    Attributes:
        modules: the modules in the design (order does not matter).
        max_propagate_iterations: fixed-point iteration limit for the
            combinational phase, to catch accidental combinational loops.
    """

    modules: list[Module] = field(default_factory=list)
    max_propagate_iterations: int = 8
    cycle: int = 0

    def add_module(self, module: Module) -> Module:
        """Register a module with the simulator."""
        self.modules.append(module)
        return module

    def _snapshot_wires(self) -> list[tuple[Wire, Any]]:
        snapshot = []
        for module in self.modules:
            for attribute in vars(module).values():
                if isinstance(attribute, Wire):
                    snapshot.append((attribute, attribute.value))
        return snapshot

    def step(self) -> None:
        """Advance the design by one clock cycle."""
        # Combinational phase: iterate propagate until wires settle.
        for _ in range(self.max_propagate_iterations):
            before = self._snapshot_wires()
            for module in self.modules:
                module.propagate()
            after = self._snapshot_wires()
            if all(prev == wire.value for (wire, prev), (_, _) in zip(before, after)) and len(
                before
            ) == len(after):
                break
        else:
            raise SimulationError(
                "combinational signals did not settle; possible combinational loop"
            )
        # Sequential phase: latch registers and run per-module update hooks.
        for module in self.modules:
            module.update()
            module._tick_registers()
        self.cycle += 1

    def run(self, cycles: int | None = None, until: Callable[[], bool] | None = None,
            max_cycles: int = 1_000_000) -> int:
        """Run for a fixed number of cycles or until a predicate is true.

        Returns the number of cycles executed in this call.
        """
        if cycles is None and until is None:
            raise SimulationError("run() needs either a cycle count or an 'until' predicate")
        executed = 0
        if cycles is not None:
            for _ in range(cycles):
                self.step()
                executed += 1
            return executed
        while not until():
            if executed >= max_cycles:
                raise SimulationError(f"simulation did not finish within {max_cycles} cycles")
            self.step()
            executed += 1
        return executed
