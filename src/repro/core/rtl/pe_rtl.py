"""Register-transfer-level model of a single EIE processing element.

The model follows the PE datapath of Figure 4(b) as a small state machine
built on the two-phase kernel:

* ``PTR_READ`` — the column index at the head of the activation queue is used
  to read the start and end pointers from the (banked) pointer SRAM; one
  cycle.
* ``STREAM`` — the sparse-matrix read unit delivers one (virtual weight,
  relative index) entry per cycle; the weight decoder expands the 4-bit
  virtual weight through the codebook, the address accumulator adds the
  relative index to the running row position, and the arithmetic unit
  performs ``b_x += S[I] * a_j`` into the destination activation registers.
* when the column is exhausted the PE pops the next queued activation (or
  idles until one arrives).

The test suite validates this model against the functional
:class:`~repro.core.pe.ProcessingElement` (same accumulator contents) and
against the broadcast-level cycle model (consistent cycle counts), mirroring
the paper's RTL-versus-simulator verification flow.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.compression.csc import CSCMatrix
from repro.compression.quantization import WeightCodebook
from repro.core.activation_queue import QueueEntry
from repro.core.rtl.kernel import Module, Simulator
from repro.errors import SimulationError

__all__ = ["RTLProcessingElement", "RTLRunResult", "run_pe_rtl"]

_STATE_IDLE = "idle"
_STATE_PTR_READ = "ptr_read"
_STATE_STREAM = "stream"


class RTLProcessingElement(Module):
    """State-machine RTL model of one PE.

    Args:
        slice_matrix: the PE's CSC slice (values are codebook indices).
        codebook: shared-weight table for the weight decoder.
        queue_depth: activation FIFO depth.
    """

    def __init__(
        self,
        slice_matrix: CSCMatrix,
        codebook: WeightCodebook,
        queue_depth: int = 8,
        name: str = "pe",
    ) -> None:
        super().__init__(name)
        self.slice_matrix = slice_matrix
        self.codebook = codebook
        self.queue_depth = int(queue_depth)
        self.queue: deque[QueueEntry] = deque()
        self.accumulators = np.zeros(slice_matrix.num_rows, dtype=np.float64)

        self.state = self.add_register("state", _STATE_IDLE)
        self.cursor = self.add_register("cursor", 0)
        self.column_end = self.add_register("column_end", 0)
        self.row_position = self.add_register("row_position", -1)
        self.current_value = self.add_register("current_value", 0.0)

        self.cycles = 0
        self.busy_cycles = 0
        self.entries_retired = 0
        self.ptr_reads = 0

    # -- external interface ------------------------------------------------------

    @property
    def queue_full(self) -> bool:
        """Whether the activation FIFO can accept another broadcast."""
        return len(self.queue) >= self.queue_depth

    def push_activation(self, entry: QueueEntry) -> None:
        """Broadcast one non-zero activation into the FIFO."""
        if self.queue_full:
            raise SimulationError("broadcast into a full activation queue")
        self.queue.append(entry)

    @property
    def idle(self) -> bool:
        """True when no work is queued or in flight."""
        return self.state.read() == _STATE_IDLE and not self.queue

    # -- two-phase behaviour --------------------------------------------------------

    def propagate(self) -> None:
        state = self.state.read()
        if state == _STATE_IDLE:
            if self.queue:
                self.state.write(_STATE_PTR_READ)
        elif state == _STATE_PTR_READ:
            entry = self.queue[0]
            start = int(self.slice_matrix.col_ptr[entry.column])
            end = int(self.slice_matrix.col_ptr[entry.column + 1])
            self.ptr_reads += 2
            if start == end:
                # Empty column for this PE: pop and look for more work.
                self.state.write(_STATE_PTR_READ if len(self.queue) > 1 else _STATE_IDLE)
            else:
                self.cursor.write(start)
                self.column_end.write(end)
                self.row_position.write(-1)
                self.current_value.write(entry.value)
                self.state.write(_STATE_STREAM)
        elif state == _STATE_STREAM:
            cursor = self.cursor.read()
            end = self.column_end.read()
            next_cursor = cursor + 1
            if next_cursor >= end:
                self.state.write(_STATE_PTR_READ if len(self.queue) > 1 else _STATE_IDLE)
            self.cursor.write(next_cursor)
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unknown PE state {state!r}")

    def update(self) -> None:
        state = self.state.read()
        self.cycles += 1
        if state == _STATE_PTR_READ:
            entry = self.queue[0]
            start = int(self.slice_matrix.col_ptr[entry.column])
            end = int(self.slice_matrix.col_ptr[entry.column + 1])
            if start == end:
                self.queue.popleft()
        elif state == _STATE_STREAM:
            cursor = self.cursor.read()
            index = int(self.slice_matrix.values[cursor])
            run = int(self.slice_matrix.runs[cursor])
            position = self.row_position.read() + run + 1
            weight = self.codebook.centroids[index]
            self.accumulators[position] += weight * self.current_value.read()
            self.row_position.value = position  # address accumulator updates immediately
            self.busy_cycles += 1
            self.entries_retired += 1
            if cursor + 1 >= self.column_end.read():
                self.queue.popleft()


@dataclass
class RTLRunResult:
    """Outcome of driving a single RTL PE through a broadcast schedule."""

    accumulators: np.ndarray
    cycles: int
    busy_cycles: int
    entries_retired: int
    ptr_reads: int


def run_pe_rtl(
    slice_matrix: CSCMatrix,
    codebook: WeightCodebook,
    schedule: list[QueueEntry],
    queue_depth: int = 8,
    max_cycles: int = 1_000_000,
) -> RTLRunResult:
    """Drive one RTL PE through ``schedule`` and return its results.

    Broadcasts are issued one per cycle as long as the FIFO has space,
    mirroring the CCU's behaviour for a single-PE array.
    """
    pe = RTLProcessingElement(slice_matrix, codebook, queue_depth=queue_depth)
    simulator = Simulator(modules=[pe])
    pending = deque(schedule)

    def finished() -> bool:
        return not pending and pe.idle

    while not finished():
        if pending and not pe.queue_full:
            pe.push_activation(pending.popleft())
        simulator.step()
        if simulator.cycle > max_cycles:
            raise SimulationError(f"RTL simulation exceeded {max_cycles} cycles")
    return RTLRunResult(
        accumulators=pe.accumulators.copy(),
        cycles=pe.cycles,
        busy_cycles=pe.busy_cycles,
        entries_retired=pe.entries_retired,
        ptr_reads=pe.ptr_reads,
    )
