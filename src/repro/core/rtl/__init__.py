"""Two-phase (propagate/update) RTL-style simulation kernel.

The paper's evaluation methodology describes a custom cycle-accurate C++
simulator in which "each hardware module is abstracted as an object that
implements two abstract methods: propagate and update, corresponding to
combinational logic and the flip-flop in RTL".  This subpackage reproduces
that simulation kernel in Python (:mod:`repro.core.rtl.kernel`) and uses it to
build a register-transfer-level model of a single processing element
(:mod:`repro.core.rtl.pe_rtl`), which the test suite validates against the
functional simulator — the same role the RTL/simulator cross-check plays in
the paper.
"""

from repro.core.rtl.kernel import Module, Register, Simulator, Wire
from repro.core.rtl.pe_rtl import RTLProcessingElement, run_pe_rtl

__all__ = [
    "Module",
    "Register",
    "RTLProcessingElement",
    "Simulator",
    "Wire",
    "run_pe_rtl",
]
