"""Statistics containers shared by the EIE simulators.

The containers separate three concerns: load balance (Figures 8 and 13),
performance (cycle counts, wall-clock, throughput, Figure 11 / Table IV), and
energy (Figure 7 / Table V).  They are plain dataclasses so they can be
assembled by any of the simulators and consumed by the analysis layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["LoadBalanceStats", "PerformanceStats", "EnergyStats"]


@dataclass
class LoadBalanceStats:
    """Per-PE busy/stall accounting for one layer computation.

    Attributes:
        busy_cycles: cycles each PE spent processing entries.
        total_cycles: wall-clock cycles of the whole layer.
        num_pes: number of PEs simulated.
    """

    busy_cycles: np.ndarray
    total_cycles: int
    num_pes: int

    @property
    def stall_cycles(self) -> np.ndarray:
        """Idle (starvation) cycles per PE."""
        return self.total_cycles - np.asarray(self.busy_cycles)

    @property
    def load_balance_efficiency(self) -> float:
        """1 - (bubble cycles / total cycles), averaged over PEs.

        This is the paper's definition for Figures 8 and 13: at FIFO depth 1
        roughly half the cycles are bubbles, at depth 8 most benchmarks are
        above 80%.
        """
        if self.total_cycles <= 0:
            return 1.0
        busy = np.asarray(self.busy_cycles, dtype=np.float64)
        return float(np.mean(busy) / self.total_cycles)

    @property
    def worst_pe_utilization(self) -> float:
        """Utilisation of the least-busy PE."""
        if self.total_cycles <= 0:
            return 1.0
        return float(np.min(self.busy_cycles) / self.total_cycles)

    @property
    def critical_pe_cycles(self) -> int:
        """Busy cycles of the most loaded PE (a lower bound on total cycles)."""
        return int(np.max(self.busy_cycles)) if len(np.atleast_1d(self.busy_cycles)) else 0


@dataclass
class PerformanceStats:
    """Throughput/latency summary for one layer on one platform.

    Attributes:
        cycles: total cycles (0 for analytic baselines that report time only).
        time_s: wall-clock seconds for one inference of the layer.
        macs_performed: multiply-accumulates actually executed.
        dense_macs: multiply-accumulates a dense implementation would execute.
        clock_hz: clock frequency used to convert cycles to time.
    """

    cycles: int
    time_s: float
    macs_performed: int
    dense_macs: int
    clock_hz: float = 0.0

    @property
    def time_us(self) -> float:
        """Wall-clock time in microseconds."""
        return self.time_s * 1e6

    @property
    def effective_gops(self) -> float:
        """GOP/s counting only the operations actually performed."""
        if self.time_s <= 0:
            return 0.0
        return 2.0 * self.macs_performed / self.time_s / 1e9

    @property
    def dense_equivalent_gops(self) -> float:
        """GOP/s credited as if the dense computation had been performed.

        The paper's '3 TOP/s equivalent' number: a compressed accelerator
        doing 102 GOP/s of real work delivers the application throughput of a
        3 TOP/s dense accelerator.
        """
        if self.time_s <= 0:
            return 0.0
        return 2.0 * self.dense_macs / self.time_s / 1e9

    @property
    def frames_per_second(self) -> float:
        """Layer inferences per second."""
        if self.time_s <= 0:
            return 0.0
        return 1.0 / self.time_s


@dataclass
class EnergyStats:
    """Energy summary for one layer on one platform.

    Attributes:
        energy_j: energy in joules for one inference of the layer.
        power_w: average power of the platform while computing.
        breakdown: optional named contributions in joules.
    """

    energy_j: float
    power_w: float
    breakdown: dict[str, float] = field(default_factory=dict)

    @property
    def energy_uj(self) -> float:
        """Energy in microjoules."""
        return self.energy_j * 1e6

    @property
    def energy_nj(self) -> float:
        """Energy in nanojoules."""
        return self.energy_j * 1e9

    def frames_per_joule(self) -> float:
        """Inferences per joule (the efficiency metric of Table V)."""
        if self.energy_j <= 0:
            return 0.0
        return 1.0 / self.energy_j
