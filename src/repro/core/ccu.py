"""Central Control Unit (CCU).

The CCU is the root of the LNZD quadtree.  It has two modes: in *I/O mode*
the PEs are idle while weights and activations are loaded over DMA (a one-time
cost per layer); in *Computing mode* the CCU repeatedly collects the next
non-zero input activation from the quadtree and broadcasts it, with its
column index, to every PE, stalling whenever any PE's activation queue is
full.  The functional simulator uses the CCU to derive the broadcast
schedule; the cycle-level model adds the queue/backpressure timing.
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from repro.core.activation_queue import QueueEntry
from repro.core.lnzd import LNZDTree
from repro.errors import SimulationError
from repro.utils.validation import require_vector

__all__ = ["CCUMode", "CentralControlUnit"]


class CCUMode(Enum):
    """Operating mode of the central control unit."""

    IO = "io"
    COMPUTING = "computing"


class CentralControlUnit:
    """Root LNZD node plus layer sequencing control.

    Args:
        num_pes: number of processing elements controlled by this CCU.
    """

    def __init__(self, num_pes: int) -> None:
        self.tree = LNZDTree(num_pes)
        self.num_pes = int(num_pes)
        self.mode = CCUMode.IO
        self.layers_executed = 0
        self.broadcasts_issued = 0

    def enter_io_mode(self) -> None:
        """Switch to I/O mode (PEs idle, DMA accessible)."""
        self.mode = CCUMode.IO

    def enter_computing_mode(self) -> None:
        """Switch to computing mode (broadcast loop active)."""
        self.mode = CCUMode.COMPUTING

    def broadcast_schedule(self, activations: np.ndarray) -> list[QueueEntry]:
        """The stream of (column, value) broadcasts for one input vector.

        Only non-zero activations are broadcast; this is where the dynamic
        activation sparsity is exploited.  The CCU must be in computing mode.
        """
        if self.mode is not CCUMode.COMPUTING:
            raise SimulationError("broadcasts are only issued in computing mode")
        activations = require_vector("activations", activations)
        schedule = [
            QueueEntry(column=index, value=value)
            for index, value in self.tree.scan_nonzeros(activations)
        ]
        self.broadcasts_issued += len(schedule)
        return schedule

    def finish_layer(self) -> None:
        """Record the end of one layer computation and return to I/O mode."""
        self.layers_executed += 1
        self.mode = CCUMode.IO
