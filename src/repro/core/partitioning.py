"""Workload-partitioning strategies for sparse M x V (Section VII-A).

The paper discusses three ways to distribute a sparse matrix-vector product
over processing elements and argues for the second:

1. **Column partitioning** — each PE owns whole columns of ``W`` and the
   matching elements of ``a``.  Vector ``a`` never moves (full input
   locality) but every PE produces a full-length partial output vector, so a
   cross-PE reduction is needed, and a PE whose activations are zero sits
   completely idle — bad under dynamic activation sparsity.
2. **Row interleaving (EIE's choice)** — each PE owns rows ``i`` with
   ``i mod N == k``; non-zero activations are broadcast and each output
   element lives on exactly one PE (full output locality).
3. **2-D blocking** — a grid of PEs owns blocks of ``W``; both the broadcast
   and the reduction happen at a smaller scale, which helps very large
   distributed systems but adds complexity and still idles PEs that share a
   zero-activation column.

This module provides an analytic model of all three so the design choice can
be studied as an ablation (``benchmarks/bench_ablation_design_choices.py``):
each strategy reports its per-PE work distribution, the broadcast/reduction
communication it needs, and an estimated cycle count on the same hardware
assumptions as the cycle-level model (one entry retired per PE per cycle, one
word communicated per cycle per link).  Note that the row-interleaved model
includes the padding-zero overhead of EIE's actual CSC storage format, while
the column and 2-D models are idealised lower bounds (no storage-format
overhead) — the comparison is therefore conservative in favour of the
alternatives.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.compression.csc import interleaved_entry_counts
from repro.core.cycle_model import simulate_layer_cycles
from repro.errors import SimulationError
from repro.utils.validation import require_vector
from repro.workloads.synthetic import SparsePattern

__all__ = [
    "PartitioningResult",
    "simulate_row_interleaved",
    "simulate_column_partitioned",
    "simulate_block_2d",
    "compare_strategies",
    "STRATEGY_NAMES",
]

#: The three strategies of Section VII-A, in the order the paper lists them.
STRATEGY_NAMES: tuple[str, ...] = ("column", "row-interleaved", "block-2d")


@dataclass(frozen=True)
class PartitioningResult:
    """Outcome of distributing one sparse M x V under one strategy.

    Attributes:
        strategy: strategy name (one of :data:`STRATEGY_NAMES`).
        num_pes: number of PEs used.
        per_pe_work: multiply-accumulate entries each PE performs.
        compute_cycles: cycles spent on the multiply-accumulate phase
            (bounded below by the busiest PE).
        communication_cycles: cycles spent broadcasting activations and/or
            reducing partial outputs.
        broadcast_words: activation words broadcast to more than one PE.
        reduction_words: partial-sum words combined across PEs.
        idle_pes: PEs that perform no work at all for this input.
    """

    strategy: str
    num_pes: int
    per_pe_work: np.ndarray
    compute_cycles: int
    communication_cycles: int
    broadcast_words: int
    reduction_words: int
    idle_pes: int

    @property
    def total_cycles(self) -> int:
        """Compute plus communication cycles."""
        return self.compute_cycles + self.communication_cycles

    @property
    def total_work(self) -> int:
        """Total multiply-accumulate entries across all PEs."""
        return int(np.sum(self.per_pe_work))

    @property
    def load_balance_efficiency(self) -> float:
        """Mean PE work divided by the busiest PE's work."""
        busiest = int(np.max(self.per_pe_work)) if self.per_pe_work.size else 0
        if busiest == 0:
            return 1.0
        return float(np.mean(self.per_pe_work)) / busiest

    @property
    def communication_fraction(self) -> float:
        """Fraction of the total cycles spent communicating."""
        total = self.total_cycles
        return self.communication_cycles / total if total else 0.0


def _validate(pattern: SparsePattern, activations: np.ndarray, num_pes: int) -> np.ndarray:
    activations = np.asarray(require_vector("activations", activations), dtype=np.float64)
    if activations.shape[0] != pattern.cols:
        raise SimulationError(
            f"activation length {activations.shape[0]} does not match pattern columns {pattern.cols}"
        )
    if num_pes < 1:
        raise SimulationError(f"num_pes must be >= 1, got {num_pes}")
    return activations


def _column_nnz_per_row_group(
    pattern: SparsePattern, num_groups: int
) -> np.ndarray:
    """Non-zeros per (row group, column) under ``row mod num_groups`` grouping."""
    counts, _ = interleaved_entry_counts(
        pattern.row_indices, pattern.col_ptr, pattern.rows, num_groups, max_run=10**9
    )
    return counts


def simulate_row_interleaved(
    pattern: SparsePattern,
    activations: np.ndarray,
    num_pes: int,
    fifo_depth: int = 8,
    max_run: int = 15,
) -> PartitioningResult:
    """EIE's scheme: rows interleaved over PEs, non-zero activations broadcast."""
    activations = _validate(pattern, activations, num_pes)
    counts, _ = interleaved_entry_counts(
        pattern.row_indices, pattern.col_ptr, pattern.rows, num_pes, max_run=max_run
    )
    nonzero_columns = np.nonzero(activations)[0]
    work = counts[:, nonzero_columns]
    stats = simulate_layer_cycles(work, fifo_depth=fifo_depth)
    per_pe_work = work.sum(axis=1)
    return PartitioningResult(
        strategy="row-interleaved",
        num_pes=num_pes,
        per_pe_work=per_pe_work,
        compute_cycles=stats.total_cycles,
        # The broadcast overlaps with compute in EIE (it is pipelined through
        # the LNZD tree and the FIFOs), so it does not add serial cycles.
        communication_cycles=0,
        broadcast_words=int(nonzero_columns.shape[0]) * max(num_pes - 1, 0),
        reduction_words=0,
        idle_pes=int(np.count_nonzero(per_pe_work == 0)),
    )


def simulate_column_partitioned(
    pattern: SparsePattern,
    activations: np.ndarray,
    num_pes: int,
) -> PartitioningResult:
    """First scheme: each PE owns columns ``j`` with ``j mod N == k``.

    A PE only works when one of *its* activations is non-zero, so dynamic
    activation sparsity directly translates into idle PEs.  Every PE produces
    a full-length partial output vector, which must then be reduced across
    PEs (modelled as a binary tree: ``rows`` words move ``ceil(log2(N))``
    times, ``num_pes`` words in parallel per cycle).
    """
    activations = _validate(pattern, activations, num_pes)
    column_nnz = pattern.column_nnz()
    nonzero_mask = activations != 0.0
    per_pe_work = np.zeros(num_pes, dtype=np.int64)
    for pe in range(num_pes):
        owned = np.arange(pe, pattern.cols, num_pes)
        per_pe_work[pe] = int(column_nnz[owned][nonzero_mask[owned]].sum())
    compute_cycles = int(per_pe_work.max()) if num_pes else 0
    reduction_stages = math.ceil(math.log2(num_pes)) if num_pes > 1 else 0
    reduction_words = pattern.rows * max(num_pes - 1, 0)
    # Each stage moves a full-length partial vector between PE pairs; the
    # pairs operate in parallel, so a stage costs ``rows`` cycles.
    communication_cycles = reduction_stages * pattern.rows
    return PartitioningResult(
        strategy="column",
        num_pes=num_pes,
        per_pe_work=per_pe_work,
        compute_cycles=compute_cycles,
        communication_cycles=communication_cycles,
        broadcast_words=0,
        reduction_words=reduction_words,
        idle_pes=int(np.count_nonzero(per_pe_work == 0)),
    )


def simulate_block_2d(
    pattern: SparsePattern,
    activations: np.ndarray,
    num_pes: int,
    grid: tuple[int, int] | None = None,
) -> PartitioningResult:
    """Third scheme: a ``R x C`` grid of PEs owns 2-D blocks of ``W``.

    Rows are interleaved over the ``R`` row groups and columns over the ``C``
    column groups.  Activations are broadcast only within a column of the
    grid (``R`` PEs) and partial outputs are reduced only within a row of the
    grid (``C`` PEs), so both collectives shrink, at the cost of both being
    needed.
    """
    activations = _validate(pattern, activations, num_pes)
    if grid is None:
        rows_of_grid = int(math.sqrt(num_pes))
        while num_pes % rows_of_grid:
            rows_of_grid -= 1
        grid = (rows_of_grid, num_pes // rows_of_grid)
    grid_rows, grid_cols = grid
    if grid_rows * grid_cols != num_pes:
        raise SimulationError(f"grid {grid} does not have {num_pes} PEs")
    counts = _column_nnz_per_row_group(pattern, grid_rows)  # (grid_rows, cols)
    nonzero_mask = activations != 0.0
    per_pe_work = np.zeros((grid_rows, grid_cols), dtype=np.int64)
    for column_group in range(grid_cols):
        owned = np.arange(column_group, pattern.cols, grid_cols)
        active = owned[nonzero_mask[owned]]
        per_pe_work[:, column_group] = counts[:, active].sum(axis=1)
    compute_cycles = int(per_pe_work.max()) if per_pe_work.size else 0
    nonzero_activations = int(np.count_nonzero(nonzero_mask))
    broadcast_words = nonzero_activations * max(grid_rows - 1, 0)
    local_rows = math.ceil(pattern.rows / grid_rows)
    reduction_stages = math.ceil(math.log2(grid_cols)) if grid_cols > 1 else 0
    reduction_words = local_rows * grid_rows * max(grid_cols - 1, 0)
    communication_cycles = reduction_stages * local_rows
    flat_work = per_pe_work.reshape(-1)
    return PartitioningResult(
        strategy="block-2d",
        num_pes=num_pes,
        per_pe_work=flat_work,
        compute_cycles=compute_cycles,
        communication_cycles=communication_cycles,
        broadcast_words=broadcast_words,
        reduction_words=reduction_words,
        idle_pes=int(np.count_nonzero(flat_work == 0)),
    )


def compare_strategies(
    pattern: SparsePattern,
    activations: np.ndarray,
    num_pes: int,
    fifo_depth: int = 8,
) -> dict[str, PartitioningResult]:
    """Run all three strategies on the same input and return their results."""
    return {
        "column": simulate_column_partitioned(pattern, activations, num_pes),
        "row-interleaved": simulate_row_interleaved(
            pattern, activations, num_pes, fifo_depth=fifo_depth
        ),
        "block-2d": simulate_block_2d(pattern, activations, num_pes),
    }
