"""EIE core: the paper's primary contribution.

The accelerator model is split into:

* :mod:`repro.core.config` — :class:`EIEConfig`, the hardware parameters
  (number of PEs, FIFO depth, SRAM widths/capacities, arithmetic precision,
  clock) with the paper's defaults;
* :mod:`repro.core.activation_queue` — the per-PE activation FIFO that
  absorbs load imbalance;
* :mod:`repro.core.lnzd` — the quadtree of leading non-zero detectors that
  feeds non-zero input activations to the central control unit;
* :mod:`repro.core.pe` — the functional processing element (pointer read,
  sparse-matrix read, codebook expansion, multiply-accumulate, activation
  read/write);
* :mod:`repro.core.functional` — whole-accelerator functional simulation
  (bit-exact against the dense reference);
* :mod:`repro.core.cycle_model` — the cycle-level performance model behind
  Figures 8 and 11-13 and the EIE rows of Table IV;
* :mod:`repro.core.rtl` — a small two-phase (propagate/update) RTL-style
  simulation kernel mirroring the paper's C++ simulator structure;
* :mod:`repro.core.accelerator` — the user-facing facade combining the
  compression pipeline, the simulators and the energy/area models.
"""

from repro.core.accelerator import EIEAccelerator, LayerEstimate
from repro.core.activation_queue import ActivationQueue, QueueEntry
from repro.core.config import EIEConfig
from repro.core.cycle_model import CycleAccurateEIE, CycleStats, simulate_layer_cycles
from repro.core.functional import FunctionalEIE, FunctionalResult
from repro.core.io_model import DMAModel, LoadCost, activation_batches, activation_sram_overhead_cycles
from repro.core.lnzd import LNZDNode, LNZDTree
from repro.core.partitioning import (
    PartitioningResult,
    compare_strategies,
    simulate_block_2d,
    simulate_column_partitioned,
    simulate_row_interleaved,
)
from repro.core.pe import ProcessingElement
from repro.core.stats import EnergyStats, LoadBalanceStats, PerformanceStats

__all__ = [
    "ActivationQueue",
    "CycleAccurateEIE",
    "CycleStats",
    "DMAModel",
    "EIEAccelerator",
    "EIEConfig",
    "EnergyStats",
    "LoadCost",
    "activation_batches",
    "activation_sram_overhead_cycles",
    "FunctionalEIE",
    "FunctionalResult",
    "LNZDNode",
    "LNZDTree",
    "LayerEstimate",
    "LoadBalanceStats",
    "PartitioningResult",
    "PerformanceStats",
    "ProcessingElement",
    "QueueEntry",
    "compare_strategies",
    "simulate_block_2d",
    "simulate_column_partitioned",
    "simulate_layer_cycles",
    "simulate_row_interleaved",
]
