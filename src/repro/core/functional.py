"""Whole-accelerator functional simulation.

:class:`FunctionalEIE` wires a :class:`~repro.core.ccu.CentralControlUnit`
and one :class:`~repro.core.pe.ProcessingElement` per PE together and runs the
exact computation of Equation (3) of the paper:

``b_i = ReLU( sum_{j in X_i ∩ Y} S[I_ij] * a_j )``

where ``X_i`` is the static sparsity of the weights, ``Y`` the dynamic
sparsity of the activations, ``I`` the 4-bit weight indices and ``S`` the
shared-weight codebook.  The result is bit-identical (in float mode) to the
dense reference ``ReLU(W_decoded @ a)``, which is how the simulator is
validated in the test suite — mirroring the paper's use of Caffe as the
golden model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.compression.pipeline import CompressedLayer
from repro.core.ccu import CentralControlUnit
from repro.core.config import EIEConfig
from repro.core.pe import PEAccessCounters, ProcessingElement
from repro.errors import SimulationError
from repro.nn.fixed_point import FixedPointFormat
from repro.nn.layers import ACTIVATIONS
from repro.utils.validation import require_vector

__all__ = ["FunctionalResult", "FunctionalEIE"]


@dataclass
class FunctionalResult:
    """Output and statistics of one functional-simulation run.

    Attributes:
        output: the output activation vector ``b`` (after the non-linearity).
        pre_activation: the accumulated values before the non-linearity.
        broadcasts: number of non-zero activations broadcast.
        columns_total: length of the input vector.
        counters: merged access counters across all PEs.
        per_pe_entries: entries processed by each PE (load distribution).
    """

    output: np.ndarray
    pre_activation: np.ndarray
    broadcasts: int
    columns_total: int
    counters: PEAccessCounters
    per_pe_entries: np.ndarray

    @property
    def activation_density(self) -> float:
        """Density of the input activation vector that was processed."""
        if self.columns_total == 0:
            return 0.0
        return self.broadcasts / self.columns_total

    @property
    def total_entries_processed(self) -> int:
        """Entries (weights plus padding zeros) processed across all PEs."""
        return int(self.counters.entries_processed)

    @property
    def output_density(self) -> float:
        """Density of the output vector (after ReLU, feeds the next layer)."""
        if self.output.size == 0:
            return 0.0
        return float(np.count_nonzero(self.output)) / self.output.size


class FunctionalEIE:
    """Functional (bit-exact) simulator of the EIE array for one layer.

    Args:
        layer: a compressed layer whose interleaving matches ``config.num_pes``.
        config: accelerator configuration.
        fixed_point: optional fixed-point format for weights/products; by
            default the 16-bit format implied by ``config.activation_bits`` is
            *not* applied so results match the float64 reference exactly.
    """

    def __init__(
        self,
        layer: CompressedLayer,
        config: EIEConfig | None = None,
        fixed_point: FixedPointFormat | None = None,
    ) -> None:
        self.config = config or EIEConfig(num_pes=layer.num_pes)
        if layer.num_pes != self.config.num_pes:
            raise SimulationError(
                f"layer is interleaved over {layer.num_pes} PEs but the configuration "
                f"has {self.config.num_pes}"
            )
        self.layer = layer
        self.fixed_point = fixed_point
        self.ccu = CentralControlUnit(self.config.num_pes)
        self.pes = [
            ProcessingElement(
                pe_id=pe,
                slice_matrix=layer.storage.per_pe[pe],
                codebook=layer.codebook,
                num_pes=self.config.num_pes,
                config=self.config,
                fixed_point=fixed_point,
            )
            for pe in range(self.config.num_pes)
        ]
        for pe in self.pes:
            pe.check_capacity()

    # -- execution --------------------------------------------------------------

    def run(self, activations: np.ndarray, apply_nonlinearity: bool = True) -> FunctionalResult:
        """Run one M x V on the array and return the output vector.

        Args:
            activations: dense input activation vector of length
                ``layer.cols``; zeros are skipped by the LNZD network.
            apply_nonlinearity: whether to apply the layer's non-linearity
                (ReLU for the CNN benchmarks) to the accumulated outputs.
        """
        activations = np.asarray(require_vector("activations", activations), dtype=np.float64)
        if activations.shape[0] != self.layer.cols:
            raise SimulationError(
                f"activation length {activations.shape[0]} does not match layer "
                f"input size {self.layer.cols}"
            )
        if self.fixed_point is not None:
            activations = self.fixed_point.quantize(activations)
        for pe in self.pes:
            pe.reset()
        self.ccu.enter_computing_mode()
        schedule = self.ccu.broadcast_schedule(activations)
        for entry in schedule:
            for pe in self.pes:
                pe.process_activation(entry.column, entry.value)
        self.ccu.finish_layer()
        pre_activation = self._collect_outputs()
        if apply_nonlinearity:
            nonlinearity = ACTIVATIONS[self.layer.activation_name]
            output = nonlinearity(pre_activation)
        else:
            output = pre_activation.copy()
        counters = PEAccessCounters()
        for pe in self.pes:
            counters = counters.merge(pe.counters)
        per_pe_entries = np.asarray(
            [pe.counters.entries_processed for pe in self.pes], dtype=np.int64
        )
        return FunctionalResult(
            output=output,
            pre_activation=pre_activation,
            broadcasts=len(schedule),
            columns_total=activations.shape[0],
            counters=counters,
            per_pe_entries=per_pe_entries,
        )

    def _collect_outputs(self) -> np.ndarray:
        """Gather the per-PE accumulators into the dense output vector."""
        output = np.zeros(self.layer.rows, dtype=np.float64)
        for pe in self.pes:
            output[pe.global_output_indices()] = pe.read_outputs()
        return output
