"""Cycle-level performance model of the EIE array.

The model reproduces the timing behaviour the paper's custom cycle-accurate
simulator measures, at activation-broadcast granularity:

* the CCU broadcasts one non-zero input activation per cycle at most, and
  only when no PE's activation FIFO is full;
* a PE consumes its queued activations in order; activation ``b`` (the
  ``b``-th broadcast) takes as many cycles as the PE has encoded entries
  (true non-zeros plus padding zeros) in the corresponding column, because
  the arithmetic unit retires one (weight, index) entry per cycle;
* a broadcast occupies a FIFO slot from the cycle it is issued until the PE
  has *finished* processing it, so with FIFO depth ``D`` the CCU may run at
  most ``D`` columns ahead of the slowest PE.

These rules give the recurrences implemented in
:func:`simulate_layer_cycles`, which is exact for the stated abstraction and
runs in ``O(broadcasts x PEs)`` — fast enough to simulate the full-size
Table III layers for every design-space sweep in the paper (Figures 8 and
11-13) without scaling anything down.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.compression.pipeline import CompressedLayer
from repro.core.config import EIEConfig
from repro.core.stats import LoadBalanceStats, PerformanceStats
from repro.errors import SimulationError
from repro.utils.validation import require_vector

__all__ = [
    "CycleStats",
    "layer_work_matrices",
    "simulate_layer_cycles",
    "simulate_layer_cycles_batch",
    "CycleAccurateEIE",
]


@dataclass
class CycleStats:
    """Timing statistics of one layer computation on the EIE array.

    Attributes:
        total_cycles: wall-clock cycles from first broadcast to last retire.
        busy_cycles: per-PE cycles spent retiring entries.
        broadcasts: number of non-zero activations broadcast.
        entries_processed: total entries retired across all PEs (true
            non-zeros plus padding zeros of the touched columns).
        padding_entries: padding-zero entries among ``entries_processed``.
        theoretical_cycles: perfectly balanced cycle count
            (``entries_processed / num_pes``).
        num_pes: number of PEs.
        fifo_depth: activation queue depth used.
        clock_mhz: clock used to convert cycles into time.
    """

    total_cycles: int
    busy_cycles: np.ndarray
    broadcasts: int
    entries_processed: int
    padding_entries: int
    theoretical_cycles: float
    num_pes: int
    fifo_depth: int
    clock_mhz: float

    @property
    def load_balance(self) -> LoadBalanceStats:
        """Per-PE busy/stall view of this run."""
        return LoadBalanceStats(
            busy_cycles=np.asarray(self.busy_cycles),
            total_cycles=self.total_cycles,
            num_pes=self.num_pes,
        )

    @property
    def load_balance_efficiency(self) -> float:
        """1 - bubble cycles / total cycles (Figures 8 and 13)."""
        return self.load_balance.load_balance_efficiency

    @property
    def real_work_fraction(self) -> float:
        """Useful entries / total entries processed (Figure 12's metric,
        restricted to the touched columns)."""
        if self.entries_processed == 0:
            return 1.0
        return 1.0 - self.padding_entries / self.entries_processed

    @property
    def actual_over_theoretical(self) -> float:
        """Slowdown of the real schedule versus perfect load balance."""
        if self.theoretical_cycles <= 0:
            return 1.0
        return self.total_cycles / self.theoretical_cycles

    @property
    def time_s(self) -> float:
        """Wall-clock seconds for the layer at the configured clock."""
        return self.total_cycles / (self.clock_mhz * 1e6)

    @property
    def theoretical_time_s(self) -> float:
        """Wall-clock seconds under perfect load balance."""
        return self.theoretical_cycles / (self.clock_mhz * 1e6)

    def performance(self, dense_macs: int) -> PerformanceStats:
        """Package the run as a :class:`PerformanceStats` record."""
        return PerformanceStats(
            cycles=self.total_cycles,
            time_s=self.time_s,
            macs_performed=self.entries_processed,
            dense_macs=dense_macs,
            clock_hz=self.clock_mhz * 1e6,
        )


def layer_work_matrices(layer: CompressedLayer) -> tuple[np.ndarray, np.ndarray]:
    """Per-(PE, column) work and padding counts of a compressed layer.

    Returns ``(counts, padding)``, both of shape ``(num_pes, num_cols)``:
    ``counts[p, j]`` is the number of encoded entries PE ``p`` must retire
    when column ``j`` is broadcast, and ``padding[p, j]`` how many of those
    are padding zeros.  This is the layer-dependent (but activation- and
    configuration-independent) half of the cycle model, shared by
    :class:`CycleAccurateEIE` and the ``"cycle"`` engine adapter so a layer
    only pays the extraction cost once per preparation.
    """
    counts = layer.storage.entries_per_pe_column()
    padding = np.zeros_like(counts)
    for pe, matrix in enumerate(layer.storage.per_pe):
        # Per-column padding counts for this PE.
        col_counts = matrix.column_entry_counts()
        padding_values = matrix.values == 0.0
        if padding_values.any():
            col_ids = np.repeat(np.arange(matrix.num_cols), col_counts)
            padding[pe, :] = np.bincount(
                col_ids[padding_values], minlength=matrix.num_cols
            )
    return counts, padding


def simulate_layer_cycles(
    work: np.ndarray,
    fifo_depth: int,
    padding_work: np.ndarray | None = None,
    clock_mhz: float = 800.0,
) -> CycleStats:
    """Simulate the broadcast/FIFO timing for one layer.

    Args:
        work: integer array of shape ``(num_pes, num_broadcasts)``;
            ``work[p, b]`` is the number of encoded entries PE ``p`` must
            retire for the ``b``-th broadcast non-zero activation.
        fifo_depth: activation queue depth ``D``.
        padding_work: optional array of the same shape counting how many of
            those entries are padding zeros (used for Figure 12 statistics).
        clock_mhz: clock frequency for time conversion.

    Returns:
        A :class:`CycleStats` with total cycles, per-PE busy cycles and the
        derived efficiency metrics.
    """
    work = np.asarray(work, dtype=np.int64)
    if work.ndim != 2:
        raise SimulationError(f"work must be 2-D (num_pes, broadcasts), got shape {work.shape}")
    if np.any(work < 0):
        raise SimulationError("work counts must be non-negative")
    if fifo_depth < 1:
        raise SimulationError(f"fifo_depth must be >= 1, got {fifo_depth}")
    if clock_mhz <= 0.0:
        raise SimulationError(f"clock_mhz must be > 0, got {clock_mhz}")
    num_pes, num_broadcasts = work.shape
    if num_pes == 0:
        raise SimulationError("work must cover at least one PE (got an empty PE axis)")
    if padding_work is not None:
        padding_work = np.asarray(padding_work, dtype=np.int64)
        if padding_work.shape != work.shape:
            raise SimulationError("padding_work must have the same shape as work")
        padding_total = int(padding_work.sum())
    else:
        padding_total = 0

    busy = work.sum(axis=1)
    entries_total = int(busy.sum())
    theoretical = entries_total / num_pes

    if num_broadcasts == 0:
        return CycleStats(
            total_cycles=0,
            busy_cycles=np.zeros(num_pes, dtype=np.int64),
            broadcasts=0,
            entries_processed=0,
            padding_entries=0,
            theoretical_cycles=0.0,
            num_pes=num_pes,
            fifo_depth=fifo_depth,
            clock_mhz=clock_mhz,
        )

    # done[p] after processing broadcast b; a ring buffer of the last
    # ``fifo_depth`` completion vectors provides the backpressure term.
    done = np.zeros(num_pes, dtype=np.int64)
    completion_history = np.zeros((fifo_depth, num_pes), dtype=np.int64)
    broadcast_time = 0
    for b in range(num_broadcasts):
        if b == 0:
            broadcast_time = 1
        else:
            broadcast_time = broadcast_time + 1
        if b >= fifo_depth:
            # The CCU may only broadcast once every PE has retired broadcast
            # b - fifo_depth (its FIFO slot is then free again).
            oldest = completion_history[(b - fifo_depth) % fifo_depth]
            broadcast_time = max(broadcast_time, int(oldest.max()))
        start = np.maximum(done, broadcast_time)
        done = start + work[:, b]
        completion_history[b % fifo_depth] = done
    total_cycles = int(done.max())

    return CycleStats(
        total_cycles=total_cycles,
        busy_cycles=busy,
        broadcasts=num_broadcasts,
        entries_processed=entries_total,
        padding_entries=padding_total,
        theoretical_cycles=theoretical,
        num_pes=num_pes,
        fifo_depth=fifo_depth,
        clock_mhz=clock_mhz,
    )


def simulate_layer_cycles_batch(
    works: "list[np.ndarray]",
    fifo_depth: int,
    padding_totals: "Sequence[int] | None" = None,
    clock_mhz: float = 800.0,
) -> "list[CycleStats]":
    """Run the broadcast/FIFO recurrence for many inputs at once.

    Semantically identical to calling :func:`simulate_layer_cycles` on each
    ``works[i]`` (the engine parity tests pin this element-wise), but the
    recurrence advances every batch item per step with array operations: the
    items are packed into one ``(batch, num_pes, max_broadcasts)`` tensor and
    items shorter than the longest are masked out once finished.  For a batch
    of ``n`` inputs of one layer this turns ``n x broadcasts`` Python-loop
    iterations into ``max_broadcasts`` vectorised steps.

    Args:
        works: per-item work matrices, all with the same ``num_pes`` rows.
        fifo_depth: activation queue depth ``D``.
        padding_totals: optional per-item counts of padding-zero entries
            among the touched columns (a total, not a matrix: the batched
            path only reports the aggregate, and callers can derive it from
            per-column padding sums without gathering full matrices).
        clock_mhz: clock frequency for time conversion.
    """
    if fifo_depth < 1:
        raise SimulationError(f"fifo_depth must be >= 1, got {fifo_depth}")
    if clock_mhz <= 0.0:
        raise SimulationError(f"clock_mhz must be > 0, got {clock_mhz}")
    if padding_totals is not None and len(padding_totals) != len(works):
        raise SimulationError("padding_totals must have one entry per work matrix")
    if not works:
        return []
    arrays = [np.asarray(work, dtype=np.int64) for work in works]
    for work in arrays:
        if work.ndim != 2:
            raise SimulationError(
                f"work must be 2-D (num_pes, broadcasts), got shape {work.shape}"
            )
        if np.any(work < 0):
            raise SimulationError("work counts must be non-negative")
    num_pes = arrays[0].shape[0]
    if num_pes == 0:
        raise SimulationError("work must cover at least one PE (got an empty PE axis)")
    if any(work.shape[0] != num_pes for work in arrays):
        raise SimulationError("all work matrices of a batch must share the PE count")
    if padding_totals is None:
        padding_totals = [0] * len(arrays)

    batch = len(arrays)
    lengths = np.asarray([work.shape[1] for work in arrays], dtype=np.int64)
    max_broadcasts = int(lengths.max())
    packed = np.zeros((batch, num_pes, max_broadcasts), dtype=np.int64)
    for index, work in enumerate(arrays):
        packed[index, :, : work.shape[1]] = work

    done = np.zeros((batch, num_pes), dtype=np.int64)
    completion_history = np.zeros((fifo_depth, batch, num_pes), dtype=np.int64)
    broadcast_time = np.zeros(batch, dtype=np.int64)
    for b in range(max_broadcasts):
        active = b < lengths
        broadcast_time = broadcast_time + 1
        if b >= fifo_depth:
            oldest = completion_history[(b - fifo_depth) % fifo_depth]
            broadcast_time = np.maximum(broadcast_time, oldest.max(axis=1))
        start = np.maximum(done, broadcast_time[:, np.newaxis])
        advanced = start + packed[:, :, b]
        done = np.where(active[:, np.newaxis], advanced, done)
        completion_history[b % fifo_depth] = done
    totals = done.max(axis=1)

    results: list[CycleStats] = []
    for index, work in enumerate(arrays):
        busy = work.sum(axis=1)
        entries_total = int(busy.sum())
        num_broadcasts = int(lengths[index])
        results.append(
            CycleStats(
                total_cycles=int(totals[index]) if num_broadcasts else 0,
                busy_cycles=busy,
                broadcasts=num_broadcasts,
                entries_processed=entries_total if num_broadcasts else 0,
                padding_entries=int(padding_totals[index]) if num_broadcasts else 0,
                theoretical_cycles=entries_total / num_pes if num_broadcasts else 0.0,
                num_pes=num_pes,
                fifo_depth=fifo_depth,
                clock_mhz=clock_mhz,
            )
        )
    return results


class CycleAccurateEIE:
    """Cycle-level simulator facade operating on compressed layers.

    For explicitly compressed layers (:class:`CompressedLayer`) the per-PE,
    per-column work counts are extracted from the interleaved CSC storage; the
    synthetic full-size workloads in :mod:`repro.workloads` provide the work
    matrices directly (see :class:`repro.workloads.generator.LayerWorkload`).
    """

    def __init__(self, config: EIEConfig | None = None) -> None:
        self.config = config or EIEConfig()

    def simulate_layer(
        self,
        layer: CompressedLayer,
        activations: np.ndarray,
    ) -> CycleStats:
        """Simulate the timing of running ``layer`` on ``activations``."""
        if layer.num_pes != self.config.num_pes:
            raise SimulationError(
                f"layer is interleaved over {layer.num_pes} PEs but the configuration "
                f"has {self.config.num_pes}"
            )
        activations = np.asarray(require_vector("activations", activations), dtype=np.float64)
        if activations.shape[0] != layer.cols:
            raise SimulationError(
                f"activation length {activations.shape[0]} does not match layer "
                f"input size {layer.cols}"
            )
        nonzero_columns = np.nonzero(activations)[0]
        counts, padding = layer_work_matrices(layer)
        work = counts[:, nonzero_columns]
        padding_work = padding[:, nonzero_columns]
        return simulate_layer_cycles(
            work=work,
            fifo_depth=self.config.fifo_depth,
            padding_work=padding_work,
            clock_mhz=self.config.clock_mhz,
        )

    def simulate_work_matrix(
        self,
        work: np.ndarray,
        padding_work: np.ndarray | None = None,
    ) -> CycleStats:
        """Simulate the timing for an explicit work matrix."""
        return simulate_layer_cycles(
            work=work,
            fifo_depth=self.config.fifo_depth,
            padding_work=padding_work,
            clock_mhz=self.config.clock_mhz,
        )
