"""Cycle-level performance model of the EIE array.

The model reproduces the timing behaviour the paper's custom cycle-accurate
simulator measures, at activation-broadcast granularity:

* the CCU broadcasts one non-zero input activation per cycle at most, and
  only when no PE's activation FIFO is full;
* a PE consumes its queued activations in order; activation ``b`` (the
  ``b``-th broadcast) takes as many cycles as the PE has encoded entries
  (true non-zeros plus padding zeros) in the corresponding column, because
  the arithmetic unit retires one (weight, index) entry per cycle;
* a broadcast occupies a FIFO slot from the cycle it is issued until the PE
  has *finished* processing it, so with FIFO depth ``D`` the CCU may run at
  most ``D`` columns ahead of the slowest PE.

These rules give the recurrences implemented in
:func:`simulate_layer_cycles`, which is exact for the stated abstraction and
runs in ``O(broadcasts x PEs)`` — fast enough to simulate the full-size
Table III layers for every design-space sweep in the paper (Figures 8 and
11-13) without scaling anything down.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro import kernels
from repro.compression.pipeline import CompressedLayer
from repro.core.config import EIEConfig
from repro.core.stats import LoadBalanceStats, PerformanceStats
from repro.errors import SimulationError
from repro.utils.validation import require_vector

__all__ = [
    "CycleStats",
    "layer_work_matrices",
    "simulate_layer_cycles",
    "simulate_layer_cycles_batch",
    "CycleAccurateEIE",
]


@dataclass
class CycleStats:
    """Timing statistics of one layer computation on the EIE array.

    Attributes:
        total_cycles: wall-clock cycles from first broadcast to last retire.
        busy_cycles: per-PE cycles spent retiring entries.
        broadcasts: number of non-zero activations broadcast.
        entries_processed: total entries retired across all PEs (true
            non-zeros plus padding zeros of the touched columns).
        padding_entries: padding-zero entries among ``entries_processed``.
        theoretical_cycles: perfectly balanced cycle count
            (``entries_processed / num_pes``).
        num_pes: number of PEs.
        fifo_depth: activation queue depth used.
        clock_mhz: clock used to convert cycles into time.
    """

    total_cycles: int
    busy_cycles: np.ndarray
    broadcasts: int
    entries_processed: int
    padding_entries: int
    theoretical_cycles: float
    num_pes: int
    fifo_depth: int
    clock_mhz: float

    @property
    def load_balance(self) -> LoadBalanceStats:
        """Per-PE busy/stall view of this run."""
        return LoadBalanceStats(
            busy_cycles=np.asarray(self.busy_cycles),
            total_cycles=self.total_cycles,
            num_pes=self.num_pes,
        )

    @property
    def load_balance_efficiency(self) -> float:
        """1 - bubble cycles / total cycles (Figures 8 and 13)."""
        return self.load_balance.load_balance_efficiency

    @property
    def real_work_fraction(self) -> float:
        """Useful entries / total entries processed (Figure 12's metric,
        restricted to the touched columns)."""
        if self.entries_processed == 0:
            return 1.0
        return 1.0 - self.padding_entries / self.entries_processed

    @property
    def actual_over_theoretical(self) -> float:
        """Slowdown of the real schedule versus perfect load balance."""
        if self.theoretical_cycles <= 0:
            return 1.0
        return self.total_cycles / self.theoretical_cycles

    @property
    def time_s(self) -> float:
        """Wall-clock seconds for the layer at the configured clock."""
        return self.total_cycles / (self.clock_mhz * 1e6)

    @property
    def theoretical_time_s(self) -> float:
        """Wall-clock seconds under perfect load balance."""
        return self.theoretical_cycles / (self.clock_mhz * 1e6)

    def performance(self, dense_macs: int) -> PerformanceStats:
        """Package the run as a :class:`PerformanceStats` record."""
        return PerformanceStats(
            cycles=self.total_cycles,
            time_s=self.time_s,
            macs_performed=self.entries_processed,
            dense_macs=dense_macs,
            clock_hz=self.clock_mhz * 1e6,
        )


def layer_work_matrices(layer: CompressedLayer) -> tuple[np.ndarray, np.ndarray]:
    """Per-(PE, column) work and padding counts of a compressed layer.

    Returns ``(counts, padding)``, both of shape ``(num_pes, num_cols)``:
    ``counts[p, j]`` is the number of encoded entries PE ``p`` must retire
    when column ``j`` is broadcast, and ``padding[p, j]`` how many of those
    are padding zeros.  This is the layer-dependent (but activation- and
    configuration-independent) half of the cycle model, shared by
    :class:`CycleAccurateEIE` and the ``"cycle"`` engine adapter so a layer
    only pays the extraction cost once per preparation.  Both matrices come
    from one bincount over flat (PE, column) ids covering every stored entry
    (no per-PE Python loop) and are cached read-only on the storage, so
    repeated simulations of the same layer skip the extraction entirely.
    """
    return layer.storage.entries_per_pe_column(), layer.storage.padding_per_pe_column()


def _blocked_recurrence_totals(
    packed: np.ndarray, lengths: np.ndarray, fifo_depth: int
) -> np.ndarray:
    """Total cycles per batch item under the broadcast/FIFO recurrence.

    One implementation serves both the single-input and the batched
    simulation paths.  The exact per-broadcast recurrence is

    * ``t_b = max(t_{b-1} + 1, M_{b-D})`` — the CCU broadcasts at most one
      activation per cycle and must wait until the slowest PE has retired
      broadcast ``b - D`` (its FIFO slot frees up), where
      ``M_j = max_p done[p, j]``;
    * ``done[p, b] = max(done[p, b-1], t_b) + work[p, b]``.

    Because ``t`` within a window of ``D = fifo_depth`` broadcasts depends
    only on completions from *before* the window, the recurrence advances one
    FIFO-depth-sized block at a time with pure array operations: writing
    ``t_b = b + 1 + g_b`` turns the backpressure into a running maximum of
    ``M_{b-D} - b - 1`` over the rolling completion array of the previous
    block, and the per-PE ``done`` recurrence inside a block becomes a
    prefix-sum plus running maximum (``done = W + max(done_prev, accmax(t - W
    + w))``).  All batch items advance together; items shorter than the
    longest are read off at their own last broadcast (the recurrence past an
    item's end only touches that item's lanes).

    Args:
        packed: ``(max_broadcasts, batch, num_pes)`` int64 work tensor,
            zero-padded beyond each item's length.  Broadcast-major layout
            keeps each block's slab contiguous (and L2-resident together
            with the scratch buffers).
        lengths: per-item broadcast counts.
        fifo_depth: activation queue depth ``D``.

    Returns:
        int64 totals of shape ``(batch,)`` (0 for zero-length items).
    """
    max_broadcasts, batch, num_pes = packed.shape
    totals = np.zeros(batch, dtype=np.int64)
    if max_broadcasts == 0 or batch == 0:
        return totals
    depth = int(fifo_depth)
    last_index = np.asarray(lengths, dtype=np.int64) - 1
    item_ids = np.arange(batch)

    if depth == 1:
        # Depth-1 closed form: the CCU waits for the slowest PE after every
        # broadcast, so t_b = t_{b-1} + max(1, max_p work[p, b-1]) and every
        # PE starts at t_b exactly (done[p, b] = t_b + work[p, b]).
        slowest = packed.max(axis=2)  # (max_broadcasts, batch)
        strides = np.maximum(slowest, 1)
        starts = np.ones(batch, dtype=np.int64)
        np.cumsum(strides[:-1], axis=0, out=strides[:-1])
        if max_broadcasts > 1:
            starts = starts + np.where(
                last_index > 0, strides[np.maximum(last_index - 1, 0), item_ids], 0
            )
        finishes = starts + slowest[np.maximum(last_index, 0), item_ids]
        return np.where(last_index >= 0, finishes, 0)

    # Block span: at most the FIFO depth (the backpressure lag), and at most
    # 32 broadcasts so the per-block slabs stay cache-resident.  The span
    # must divide the depth so block boundaries align with the b - D window.
    no_backpressure = depth >= max_broadcasts
    if no_backpressure:
        span_cap = min(max_broadcasts, 512)
    elif depth <= 32:
        span_cap = depth
    else:
        span_cap = next(size for size in range(32, 0, -1) if depth % size == 0)
    all_steps = np.arange(1, max_broadcasts + 1, dtype=np.int64)

    # Scratch buffers reused by every block (out= everywhere): per-block
    # allocations would otherwise dominate the runtime at small FIFO depths,
    # and reuse keeps the slabs hot in cache.  ``all_peaks[b]`` records
    # ``M_b = max_p done[p, b]`` for the whole run — the rolling completion
    # array the backpressure term reads ``D`` broadcasts behind the front.
    done = np.zeros((batch, num_pes), dtype=np.int64)
    backpressure = np.zeros(batch, dtype=np.int64)
    work_prefix = np.empty((span_cap, batch, num_pes), dtype=np.int64)
    arrivals = np.empty((span_cap, batch, num_pes), dtype=np.int64)
    times = np.empty((span_cap, batch), dtype=np.int64)
    stall = np.empty((span_cap, batch), dtype=np.int64)
    all_peaks = np.empty((max_broadcasts, batch), dtype=np.int64)

    for start in range(0, max_broadcasts, span_cap):
        end = min(start + span_cap, max_broadcasts)
        span = end - start
        work = packed[start:end]
        steps = all_steps[start:end]
        prefix = work_prefix[:span]
        arrive = arrivals[:span]
        t_block = times[:span]
        if no_backpressure or start < depth:
            # Backpressure cannot bind before broadcast D: t_b = b + 1.
            # (Block starts are multiples of the span, which divides D, so a
            # block never straddles the b = D boundary.)
            t_block[:] = steps[:, None]
        else:
            # M_{b-D} for b in this block was recorded D broadcasts ago in
            # the completion array; the stall level is its running maximum
            # over M_{b-D} - (b + 1), carried across blocks.
            s_block = stall[:span]
            np.subtract(all_peaks[start - depth : end - depth], steps[:, None], out=s_block)
            np.maximum.accumulate(s_block, axis=0, out=s_block)
            np.maximum(s_block, backpressure[None, :], out=s_block)
            backpressure = s_block[-1].copy()
            np.add(steps[:, None], s_block, out=t_block)
        np.cumsum(work, axis=0, out=prefix)
        # arrivals = t_b - (prefix - work): the candidate start offset each
        # broadcast imposes on the running per-PE schedule.
        np.subtract(prefix, work, out=arrive)
        np.subtract(t_block[:, :, None], arrive, out=arrive)
        np.maximum.accumulate(arrive, axis=0, out=arrive)
        np.maximum(arrive, done[None, :, :], out=arrive)
        np.add(prefix, arrive, out=arrive)  # arrive now holds done[b, i, p]
        arrive.max(axis=2, out=all_peaks[start:end])
        done = arrive[-1].copy()
    totals = np.where(
        last_index >= 0, all_peaks[np.maximum(last_index, 0), item_ids], 0
    )
    return totals


def simulate_layer_cycles(
    work: np.ndarray,
    fifo_depth: int,
    padding_work: np.ndarray | None = None,
    clock_mhz: float = 800.0,
    assume_valid: bool = False,
    backend: str = "numpy",
) -> CycleStats:
    """Simulate the broadcast/FIFO timing for one layer.

    The single-input path is the batched recurrence
    (:func:`_blocked_recurrence_totals`) run on a batch of one — one
    implementation, no drift between the two entry points.  With
    ``backend="native"`` (and the kernel tier usable, see
    :mod:`repro.kernels`) the recurrence instead runs as a compiled
    nopython loop; the arithmetic is pure int64 either way, so the result
    is bit-identical (pinned by the backend-parameterized parity suites).

    Args:
        work: integer array of shape ``(num_pes, num_broadcasts)``;
            ``work[p, b]`` is the number of encoded entries PE ``p`` must
            retire for the ``b``-th broadcast non-zero activation.
        fifo_depth: activation queue depth ``D``.
        padding_work: optional array of the same shape counting how many of
            those entries are padding zeros (used for Figure 12 statistics).
        clock_mhz: clock frequency for time conversion.
        assume_valid: skip the dtype conversion and the non-negativity /
            dimensionality checks.  Set by the engine adapter, whose prepared
            layers already hold validated int64 work matrices — the checks
            would otherwise re-scan every entry on every run call.
        backend: ``"numpy"`` (default) or ``"native"``; the latter silently
            falls back to numpy when the kernel tier is unavailable or
            disabled via ``REPRO_NATIVE=0``.

    Returns:
        A :class:`CycleStats` with total cycles, per-PE busy cycles and the
        derived efficiency metrics.
    """
    if not assume_valid:
        work = np.asarray(work, dtype=np.int64)
        if work.ndim != 2:
            raise SimulationError(
                f"work must be 2-D (num_pes, broadcasts), got shape {work.shape}"
            )
        if np.any(work < 0):
            raise SimulationError("work counts must be non-negative")
    if fifo_depth < 1:
        raise SimulationError(f"fifo_depth must be >= 1, got {fifo_depth}")
    if clock_mhz <= 0.0:
        raise SimulationError(f"clock_mhz must be > 0, got {clock_mhz}")
    num_pes, num_broadcasts = work.shape
    if num_pes == 0:
        raise SimulationError("work must cover at least one PE (got an empty PE axis)")
    if padding_work is not None:
        if not assume_valid:
            padding_work = np.asarray(padding_work, dtype=np.int64)
        if padding_work.shape != work.shape:
            raise SimulationError("padding_work must have the same shape as work")
        padding_total = int(padding_work.sum())
    else:
        padding_total = 0

    busy = work.sum(axis=1)
    entries_total = int(busy.sum())
    theoretical = entries_total / num_pes

    if num_broadcasts == 0:
        return CycleStats(
            total_cycles=0,
            busy_cycles=np.zeros(num_pes, dtype=np.int64),
            broadcasts=0,
            entries_processed=0,
            padding_entries=0,
            theoretical_cycles=0.0,
            num_pes=num_pes,
            fifo_depth=fifo_depth,
            clock_mhz=clock_mhz,
        )

    if backend == "native" and kernels.use_native():
        total_cycles = int(
            kernels.get().recurrence_total_single(
                np.ascontiguousarray(work.T), int(fifo_depth)
            )
        )
    else:
        totals = _blocked_recurrence_totals(
            np.ascontiguousarray(work.T)[:, np.newaxis, :],
            np.asarray([num_broadcasts], dtype=np.int64),
            fifo_depth,
        )
        total_cycles = int(totals[0])

    return CycleStats(
        total_cycles=total_cycles,
        busy_cycles=busy,
        broadcasts=num_broadcasts,
        entries_processed=entries_total,
        padding_entries=padding_total,
        theoretical_cycles=theoretical,
        num_pes=num_pes,
        fifo_depth=fifo_depth,
        clock_mhz=clock_mhz,
    )


def simulate_layer_cycles_batch(
    works: "list[np.ndarray]",
    fifo_depth: int,
    padding_totals: "Sequence[int] | None" = None,
    clock_mhz: float = 800.0,
    assume_valid: bool = False,
    backend: str = "numpy",
) -> "list[CycleStats]":
    """Run the broadcast/FIFO recurrence for many inputs at once.

    Semantically identical to calling :func:`simulate_layer_cycles` on each
    ``works[i]`` (the engine parity tests pin this element-wise): both paths
    share :func:`_blocked_recurrence_totals`.  The items are packed into one
    ``(batch, num_pes, max_broadcasts)`` tensor and the recurrence advances
    every batch item one FIFO-depth-sized block of broadcasts at a time.

    Args:
        works: per-item work matrices, all with the same ``num_pes`` rows.
        fifo_depth: activation queue depth ``D``.
        padding_totals: optional per-item counts of padding-zero entries
            among the touched columns (a total, not a matrix: the batched
            path only reports the aggregate, and callers can derive it from
            per-column padding sums without gathering full matrices).
        clock_mhz: clock frequency for time conversion.
        assume_valid: skip per-item dtype conversion and validity checks
            (engine-adapter fast path for already-prepared int64 matrices).
        backend: ``"numpy"`` (default) or ``"native"``; the native tier runs
            the items as a prange-parallel compiled loop over a flat
            concatenation, falling back silently when unusable.
    """
    if fifo_depth < 1:
        raise SimulationError(f"fifo_depth must be >= 1, got {fifo_depth}")
    if clock_mhz <= 0.0:
        raise SimulationError(f"clock_mhz must be > 0, got {clock_mhz}")
    if padding_totals is not None and len(padding_totals) != len(works):
        raise SimulationError("padding_totals must have one entry per work matrix")
    if not works:
        return []
    if assume_valid:
        arrays = list(works)
    else:
        arrays = [np.asarray(work, dtype=np.int64) for work in works]
        for work in arrays:
            if work.ndim != 2:
                raise SimulationError(
                    f"work must be 2-D (num_pes, broadcasts), got shape {work.shape}"
                )
            if np.any(work < 0):
                raise SimulationError("work counts must be non-negative")
    num_pes = arrays[0].shape[0]
    if num_pes == 0:
        raise SimulationError("work must cover at least one PE (got an empty PE axis)")
    if any(work.shape[0] != num_pes for work in arrays):
        raise SimulationError("all work matrices of a batch must share the PE count")
    if padding_totals is None:
        padding_totals = [0] * len(arrays)

    batch = len(arrays)
    lengths = np.asarray([work.shape[1] for work in arrays], dtype=np.int64)
    if backend == "native" and kernels.use_native():
        # Flat concatenation instead of the zero-padded tensor: the compiled
        # loop walks each item's exact span, so short items cost nothing.
        offsets = np.zeros(batch + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        flat_work = np.empty((int(offsets[-1]), num_pes), dtype=np.int64)
        for index, work in enumerate(arrays):
            flat_work[offsets[index] : offsets[index + 1], :] = work.T
        totals = kernels.get().recurrence_totals_batch(
            flat_work, offsets, int(fifo_depth)
        )
    else:
        max_broadcasts = int(lengths.max())
        packed = np.zeros((max_broadcasts, batch, num_pes), dtype=np.int64)
        for index, work in enumerate(arrays):
            packed[: work.shape[1], index, :] = work.T
        totals = _blocked_recurrence_totals(packed, lengths, fifo_depth)

    results: list[CycleStats] = []
    for index, work in enumerate(arrays):
        busy = work.sum(axis=1)
        entries_total = int(busy.sum())
        num_broadcasts = int(lengths[index])
        results.append(
            CycleStats(
                total_cycles=int(totals[index]) if num_broadcasts else 0,
                busy_cycles=busy,
                broadcasts=num_broadcasts,
                entries_processed=entries_total if num_broadcasts else 0,
                padding_entries=int(padding_totals[index]) if num_broadcasts else 0,
                theoretical_cycles=entries_total / num_pes if num_broadcasts else 0.0,
                num_pes=num_pes,
                fifo_depth=fifo_depth,
                clock_mhz=clock_mhz,
            )
        )
    return results


class CycleAccurateEIE:
    """Cycle-level simulator facade operating on compressed layers.

    For explicitly compressed layers (:class:`CompressedLayer`) the per-PE,
    per-column work counts are extracted from the interleaved CSC storage; the
    synthetic full-size workloads in :mod:`repro.workloads` provide the work
    matrices directly (see :class:`repro.workloads.generator.LayerWorkload`).
    """

    def __init__(self, config: EIEConfig | None = None) -> None:
        self.config = config or EIEConfig()

    def simulate_layer(
        self,
        layer: CompressedLayer,
        activations: np.ndarray,
    ) -> CycleStats:
        """Simulate the timing of running ``layer`` on ``activations``."""
        if layer.num_pes != self.config.num_pes:
            raise SimulationError(
                f"layer is interleaved over {layer.num_pes} PEs but the configuration "
                f"has {self.config.num_pes}"
            )
        activations = np.asarray(require_vector("activations", activations), dtype=np.float64)
        if activations.shape[0] != layer.cols:
            raise SimulationError(
                f"activation length {activations.shape[0]} does not match layer "
                f"input size {layer.cols}"
            )
        nonzero_columns = np.nonzero(activations)[0]
        counts, padding = layer_work_matrices(layer)
        work = counts[:, nonzero_columns]
        padding_work = padding[:, nonzero_columns]
        return simulate_layer_cycles(
            work=work,
            fifo_depth=self.config.fifo_depth,
            padding_work=padding_work,
            clock_mhz=self.config.clock_mhz,
        )

    def simulate_work_matrix(
        self,
        work: np.ndarray,
        padding_work: np.ndarray | None = None,
    ) -> CycleStats:
        """Simulate the timing for an explicit work matrix."""
        return simulate_layer_cycles(
            work=work,
            fifo_depth=self.config.fifo_depth,
            padding_work=padding_work,
            clock_mhz=self.config.clock_mhz,
        )
