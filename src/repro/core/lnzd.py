"""Distributed leading non-zero detection (LNZD) quadtree.

Input activations are distributed across the PEs; to exploit their dynamic
sparsity, each group of four PEs performs a local leading non-zero detection
and forwards the result to an LNZD node.  The nodes form a quadtree whose
root is the central control unit; the selected non-zero activation is
broadcast back to every PE.  For 64 PEs the tree has 16 + 4 + 1 = 21 nodes,
matching the count and the area/power accounting in Section VI.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimulationError
from repro.utils.validation import require_vector

__all__ = ["LNZDNode", "LNZDTree"]

#: Fan-in of each LNZD node (each node covers four children).
LNZD_FANIN = 4


@dataclass
class LNZDNode:
    """One node of the LNZD quadtree.

    Attributes:
        level: 0 for leaf nodes (covering PEs directly), increasing upwards.
        index: position of the node within its level.
        children: child nodes (empty for leaves).
        pe_range: half-open range of PE indices this node covers.
    """

    level: int
    index: int
    pe_range: tuple[int, int]
    children: list["LNZDNode"] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        """True for nodes whose children are PEs rather than other nodes."""
        return not self.children

    def covered_pes(self) -> range:
        """The PE indices under this node."""
        return range(self.pe_range[0], self.pe_range[1])


class LNZDTree:
    """The full quadtree over ``num_pes`` processing elements.

    The tree's main functional job in the simulators is
    :meth:`scan_nonzeros`: produce the stream of (column index, value) pairs
    for the non-zero entries of an input activation vector, in index order,
    which is what the root node broadcasts to the PEs.
    """

    def __init__(self, num_pes: int) -> None:
        if num_pes < 1:
            raise SimulationError(f"num_pes must be >= 1, got {num_pes}")
        self.num_pes = int(num_pes)
        self.levels: list[list[LNZDNode]] = []
        self._build()

    def _build(self) -> None:
        """Construct the quadtree bottom-up."""
        current_count = self.num_pes
        level = 0
        previous_nodes: list[LNZDNode] | None = None
        pes_per_child = 1
        while current_count > 1 or not self.levels:
            node_count = -(-current_count // LNZD_FANIN)  # ceil division
            nodes: list[LNZDNode] = []
            pes_per_node = pes_per_child * LNZD_FANIN
            for index in range(node_count):
                start = index * pes_per_node
                end = min(start + pes_per_node, self.num_pes)
                children = (
                    previous_nodes[index * LNZD_FANIN : (index + 1) * LNZD_FANIN]
                    if previous_nodes is not None
                    else []
                )
                nodes.append(LNZDNode(level=level, index=index, pe_range=(start, end), children=children))
            self.levels.append(nodes)
            previous_nodes = nodes
            current_count = node_count
            pes_per_child = pes_per_node
            level += 1
            if node_count == 1:
                break

    # -- structure -----------------------------------------------------------------

    @property
    def root(self) -> LNZDNode:
        """The root node, which doubles as the central control unit."""
        return self.levels[-1][0]

    @property
    def num_nodes(self) -> int:
        """Total number of LNZD nodes (21 for 64 PEs)."""
        return sum(len(level) for level in self.levels)

    @property
    def depth(self) -> int:
        """Number of levels between the PEs and the root."""
        return len(self.levels)

    def nodes(self) -> list[LNZDNode]:
        """All nodes, leaves first."""
        return [node for level in self.levels for node in level]

    # -- functional behaviour ---------------------------------------------------------

    def pe_for_activation(self, index: int) -> int:
        """The PE that locally stores input activation ``index``.

        Activations are distributed over PEs the same way output rows are
        (``index mod num_pes``), which is what makes the hierarchical
        detection local.
        """
        if index < 0:
            raise SimulationError(f"activation index must be >= 0, got {index}")
        return index % self.num_pes

    def scan_nonzeros(self, activations: np.ndarray) -> list[tuple[int, float]]:
        """Return (column index, value) for every non-zero activation, in order.

        This models the steady-state output of the quadtree: the root keeps
        selecting the next leading non-zero until the input vector is
        exhausted.  Zero activations are never broadcast — this is the 3x
        dynamic-sparsity saving.
        """
        activations = np.asarray(require_vector("activations", activations), dtype=np.float64)
        nonzero_indices = np.nonzero(activations)[0]
        return [(int(index), float(activations[index])) for index in nonzero_indices]

    def count_nonzeros_per_group(self, activations: np.ndarray) -> np.ndarray:
        """Non-zero count observed by each leaf LNZD group (diagnostics)."""
        activations = np.asarray(require_vector("activations", activations), dtype=np.float64)
        leaf_count = len(self.levels[0])
        counts = np.zeros(leaf_count, dtype=np.int64)
        nonzero_indices = np.nonzero(activations)[0]
        for index in nonzero_indices:
            pe = self.pe_for_activation(int(index))
            group = pe // LNZD_FANIN
            if group >= leaf_count:
                group = leaf_count - 1
            counts[group] += 1
        return counts
