"""Figure 6: speedup of every platform over CPU dense at batch size 1.

For each of the nine benchmarks the paper reports seven bars: CPU dense (the
baseline), CPU compressed, GPU dense, GPU compressed, mobile-GPU dense,
mobile-GPU compressed, and EIE running the compressed model, all without
batching.  The last group is the geometric mean.  This module computes the
per-frame times from the roofline baselines and the EIE cycle model, and the
resulting speedups relative to CPU dense.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.baselines.roofline import RooflinePlatform
from repro.baselines.specs import CPU_CORE_I7_5930K, GPU_TITAN_X, MOBILE_GPU_TEGRA_K1
from repro.core.config import EIEConfig
from repro.engine import EngineRegistry
from repro.workloads.benchmarks import BENCHMARK_NAMES, LayerSpec, resolve_spec
from repro.workloads.generator import WorkloadBuilder

__all__ = ["SPEEDUP_CONFIGS", "layer_times", "speedup_table", "GEOMEAN_KEY"]

#: The seven bars of Figure 6, in plot order.
SPEEDUP_CONFIGS: tuple[str, ...] = (
    "CPU Dense",
    "CPU Compressed",
    "GPU Dense",
    "GPU Compressed",
    "mGPU Dense",
    "mGPU Compressed",
    "EIE",
)

#: Key used for the aggregated column.
GEOMEAN_KEY = "Geo Mean"


def layer_times(
    benchmark: "str | LayerSpec",
    builder: WorkloadBuilder,
    eie_config: EIEConfig | None = None,
    batch: int = 1,
) -> dict[str, float]:
    """Per-frame time in seconds of every Figure 6 configuration for one layer.

    The EIE bar comes from the registry's ``"cycle"`` engine; the other six
    bars are analytic roofline baselines.
    """
    eie_config = eie_config or EIEConfig()
    spec = resolve_spec(benchmark)
    cpu = RooflinePlatform(CPU_CORE_I7_5930K)
    gpu = RooflinePlatform(GPU_TITAN_X)
    mgpu = RooflinePlatform(MOBILE_GPU_TEGRA_K1)
    workload = builder.build(spec, eie_config.num_pes)
    engine = EngineRegistry.create("cycle", eie_config)
    eie_stats = engine.run(engine.prepare(workload)).stats
    return {
        "CPU Dense": cpu.dense_time_s(spec, batch),
        "CPU Compressed": cpu.sparse_time_s(spec, batch),
        "GPU Dense": gpu.dense_time_s(spec, batch),
        "GPU Compressed": gpu.sparse_time_s(spec, batch),
        "mGPU Dense": mgpu.dense_time_s(spec, batch),
        "mGPU Compressed": mgpu.sparse_time_s(spec, batch),
        "EIE": eie_stats.time_s,
    }


def speedup_table(
    benchmarks: "Iterable[str | LayerSpec]" = BENCHMARK_NAMES,
    builder: WorkloadBuilder | None = None,
    eie_config: EIEConfig | None = None,
    batch: int = 1,
) -> dict[str, dict[str, float]]:
    """Figure 6 data: speedup of each configuration over CPU dense, per layer.

    Returns ``{benchmark: {configuration: speedup}}`` plus a ``"Geo Mean"``
    entry aggregating over the benchmarks.

    Back-compat shim over the ``"fig6_speedup"`` experiment of
    :mod:`repro.experiments`.
    """
    from repro.experiments import run_experiment

    result = run_experiment(
        "fig6_speedup",
        builder=builder,
        workloads=[resolve_spec(benchmark) for benchmark in benchmarks],
        config=eie_config,
        params={"batch": int(batch)},
    )
    return result.legacy()
