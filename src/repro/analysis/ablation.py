"""Ablations of EIE's design choices beyond the sweeps in the paper's figures.

DESIGN.md calls out three encoding/architecture decisions whose sensitivity
is worth quantifying:

* the 4-bit **relative-index width** (which trades index storage against
  padding zeros when zero runs exceed ``2**bits - 1``);
* the 4-bit **weight-sharing codebook** (which trades weight storage against
  reconstruction error);
* the **row-interleaved workload partitioning** versus the column and 2-D
  alternatives discussed in Section VII-A.

Each ablation returns plain dataclasses so the benchmark harness can print
them and assert the direction of the trade-off.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.compression.quantization import WeightCodebook
from repro.core.partitioning import PartitioningResult, compare_strategies
from repro.utils.rng import make_rng
from repro.workloads.benchmarks import LayerSpec, resolve_spec
from repro.workloads.generator import WorkloadBuilder

__all__ = [
    "IndexWidthPoint",
    "index_width_ablation",
    "CodebookBitsPoint",
    "codebook_bits_ablation",
    "codebook_bits_point",
    "codebook_population",
    "partitioning_ablation",
]


@dataclass(frozen=True)
class IndexWidthPoint:
    """Storage consequences of one relative-index width for one layer."""

    benchmark: str
    index_bits: int
    true_nonzeros: int
    padding_zeros: int
    storage_bits: int

    @property
    def padding_fraction(self) -> float:
        """Padding zeros / stored entries."""
        total = self.true_nonzeros + self.padding_zeros
        return self.padding_zeros / total if total else 0.0

    @property
    def bits_per_nonzero(self) -> float:
        """Stored bits per genuine non-zero weight (storage efficiency)."""
        if self.true_nonzeros == 0:
            return 0.0
        return self.storage_bits / self.true_nonzeros


def index_width_ablation(
    benchmark: "str | LayerSpec",
    index_bits_options: Sequence[int] = (2, 3, 4, 5, 6, 8),
    num_pes: int = 64,
    builder: WorkloadBuilder | None = None,
    weight_bits: int = 4,
    pointer_bits: int = 16,
) -> list[IndexWidthPoint]:
    """How the relative-index width trades padding zeros against index storage.

    Narrow indices (2-3 bits) force many padding zeros on sparse layers; wide
    indices (6-8 bits) make every entry more expensive.  The paper's 4 bits
    is the sweet spot for ~10%-dense matrices interleaved over 64 PEs.

    Back-compat shim over the ``"ablation_index_width"`` experiment of
    :mod:`repro.experiments`.
    """
    from repro.experiments import run_experiment

    result = run_experiment(
        "ablation_index_width",
        builder=builder,
        workloads=(resolve_spec(benchmark),),
        grid={"index_bits": tuple(int(bits) for bits in index_bits_options)},
        config={"num_pes": int(num_pes)},
        params={"weight_bits": int(weight_bits), "pointer_bits": int(pointer_bits)},
    )
    return result.legacy()


@dataclass(frozen=True)
class CodebookBitsPoint:
    """Accuracy/storage consequences of one codebook size."""

    weight_bits: int
    codebook_entries: int
    rms_error: float
    relative_rms_error: float
    weight_storage_bits_per_nonzero: float


def codebook_population(num_weights: int, seed: int) -> tuple[np.ndarray, float]:
    """The Gaussian weight population the codebook ablation quantizes.

    Returns the non-zero weights and the normalisation scale (their standard
    deviation); shared by the legacy function and the
    ``"ablation_codebook_bits"`` experiment.
    """
    rng = make_rng(seed)
    weights = rng.normal(0.0, 0.05, size=num_weights)
    return _nonzero_weights_and_scale(weights)


def _nonzero_weights_and_scale(weights: np.ndarray) -> tuple[np.ndarray, float]:
    weights = np.asarray(weights, dtype=np.float64).ravel()
    weights = weights[weights != 0.0]
    scale = float(np.std(weights)) or 1.0
    return weights, scale


def codebook_bits_point(
    nonzero_weights: np.ndarray, scale: float, bits: int, seed: int
) -> CodebookBitsPoint:
    """Fit one codebook size and measure its reconstruction error."""
    codebook = WeightCodebook.fit(nonzero_weights, index_bits=int(bits), rng=make_rng(seed))
    error = codebook.quantization_error(nonzero_weights)
    return CodebookBitsPoint(
        weight_bits=int(bits),
        codebook_entries=codebook.size,
        rms_error=error,
        relative_rms_error=error / scale,
        weight_storage_bits_per_nonzero=float(bits),
    )


def codebook_bits_ablation(
    weights: np.ndarray | None = None,
    weight_bits_options: Sequence[int] = (2, 3, 4, 5, 6, 8),
    num_weights: int = 20_000,
    seed: int = 0,
) -> list[CodebookBitsPoint]:
    """How the shared-weight codebook size trades error against storage.

    The paper fixes 4 bits (16 entries); this ablation quantifies the
    reconstruction error of smaller and larger codebooks on a Gaussian weight
    population (or on user-provided weights).

    The default (generated) population delegates to the
    ``"ablation_codebook_bits"`` experiment of :mod:`repro.experiments`;
    explicit ``weights`` (which a JSON spec cannot carry) run the same
    per-point primitive directly.
    """
    if weights is None:
        from repro.experiments import run_experiment

        result = run_experiment(
            "ablation_codebook_bits",
            grid={"weight_bits": tuple(int(bits) for bits in weight_bits_options)},
            params={"num_weights": int(num_weights)},
            seed=int(seed),
        )
        return result.legacy()
    nonzero, scale = _nonzero_weights_and_scale(weights)
    return [
        codebook_bits_point(nonzero, scale, int(bits), seed) for bits in weight_bits_options
    ]


def partitioning_ablation(
    benchmark: "str | LayerSpec",
    num_pes: int = 64,
    builder: WorkloadBuilder | None = None,
    fifo_depth: int = 8,
) -> dict[str, PartitioningResult]:
    """Section VII-A ablation: compare the three workload-partitioning schemes."""
    builder = builder or WorkloadBuilder()
    spec = resolve_spec(benchmark)
    pattern = builder.pattern(spec)
    activations = builder.activations(spec)
    return compare_strategies(pattern, activations, num_pes, fifo_depth=fifo_depth)
