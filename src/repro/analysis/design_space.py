"""Design-space exploration: Figures 8, 9 and 10.

* :func:`fifo_depth_sweep` — load-balance efficiency versus activation queue
  depth (Figure 8).  Diminishing returns beyond a depth of 8.
* :func:`sram_width_sweep` — number of Spmat SRAM reads, energy per read and
  total read energy versus interface width (Figure 9).  64 bits minimises the
  total energy.
* :func:`precision_study` — prediction-accuracy proxy and multiplier energy
  versus arithmetic precision (Figure 10).  16-bit fixed point is within a
  fraction of a percent of float while 8-bit collapses.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.nn.fixed_point import FixedPointFormat
from repro.nn.layers import FullyConnectedLayer
from repro.nn.model import FeedForwardNetwork
from repro.workloads.benchmarks import BENCHMARK_NAMES, LayerSpec, resolve_spec
from repro.workloads.generator import WorkloadBuilder

__all__ = [
    "fifo_depth_sweep",
    "SramWidthPoint",
    "sram_width_sweep",
    "PrecisionPoint",
    "precision_study",
    "DEFAULT_FIFO_DEPTHS",
    "DEFAULT_SRAM_WIDTHS",
]

#: FIFO depths swept in Figure 8.
DEFAULT_FIFO_DEPTHS: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256)
#: SRAM interface widths swept in Figure 9.
DEFAULT_SRAM_WIDTHS: tuple[int, ...] = (32, 64, 128, 256, 512)
#: Baseline ImageNet top-1-style accuracy of the float32 model (Figure 10).
FLOAT32_REFERENCE_ACCURACY = 0.803


def fifo_depth_sweep(
    depths: Sequence[int] = DEFAULT_FIFO_DEPTHS,
    benchmarks: "Iterable[str | LayerSpec]" = BENCHMARK_NAMES,
    num_pes: int = 64,
    builder: WorkloadBuilder | None = None,
    clock_mhz: float = 800.0,
) -> dict[str, dict[int, float]]:
    """Figure 8: load-balance efficiency per benchmark and FIFO depth.

    Back-compat shim over the ``"fig8_fifo_depth"`` experiment of
    :mod:`repro.experiments`: each benchmark's workload is prepared once in
    the run's session and shared by every depth point (the prepared work
    matrices depend only on the PE count).
    """
    from repro.experiments import run_experiment

    result = run_experiment(
        "fig8_fifo_depth",
        builder=builder,
        workloads=[resolve_spec(benchmark) for benchmark in benchmarks],
        grid={"fifo_depth": tuple(int(depth) for depth in depths)},
        config={"num_pes": int(num_pes), "clock_mhz": float(clock_mhz)},
    )
    return result.legacy()


@dataclass(frozen=True)
class SramWidthPoint:
    """One point of the Figure 9 sweep for one benchmark."""

    benchmark: str
    width_bits: int
    num_reads: int
    energy_per_read_pj: float

    @property
    def total_energy_nj(self) -> float:
        """Total Spmat read energy for one inference, in nanojoules."""
        return self.num_reads * self.energy_per_read_pj / 1e3


def sram_width_sweep(
    widths: Sequence[int] = DEFAULT_SRAM_WIDTHS,
    benchmarks: "Iterable[str | LayerSpec]" = BENCHMARK_NAMES,
    num_pes: int = 64,
    builder: WorkloadBuilder | None = None,
    spmat_sram_kb: float = 128.0,
    entry_bits: int = 8,
) -> list[SramWidthPoint]:
    """Figure 9: Spmat SRAM reads and read energy versus interface width.

    The number of reads is counted per touched (PE, column) pair: a PE
    streaming ``k`` encoded entries of a column needs ``ceil(k / (width /
    entry_bits))`` reads, so wide interfaces waste reads on short columns —
    the effect that makes 64 bits the optimum.
    """
    from repro.experiments import run_experiment

    result = run_experiment(
        "fig9_sram_width",
        builder=builder,
        workloads=[resolve_spec(benchmark) for benchmark in benchmarks],
        grid={"width_bits": tuple(int(width) for width in widths)},
        config={"num_pes": int(num_pes)},
        params={"spmat_sram_kb": float(spmat_sram_kb), "entry_bits": int(entry_bits)},
    )
    return result.legacy()


@dataclass(frozen=True)
class PrecisionPoint:
    """One bar pair of Figure 10: accuracy proxy and multiply energy."""

    precision: str
    accuracy: float
    multiply_energy_pj: float
    agreement_with_float: float


def _build_proxy_classifier(
    input_size: int, hidden_size: int, classes: int, rng: np.random.Generator
) -> FeedForwardNetwork:
    """A small FC classifier standing in for the AlexNet FC stack."""
    hidden = FullyConnectedLayer(
        weight=rng.normal(0.0, 0.12, size=(hidden_size, input_size)),
        activation="relu",
        name="proxy-hidden",
    )
    logits = FullyConnectedLayer(
        weight=rng.normal(0.0, 0.12, size=(classes, hidden_size)),
        activation="identity",
        name="proxy-logits",
    )
    return FeedForwardNetwork([hidden, logits], name="precision-proxy")


def _quantized_forward(
    network: FeedForwardNetwork, inputs: np.ndarray, fmt: FixedPointFormat | None
) -> np.ndarray:
    """Forward pass with weights and activations quantised to ``fmt``."""
    current = inputs if fmt is None else fmt.quantize(inputs)
    for layer in network.layers:
        weight = layer.weight if fmt is None else fmt.quantize(layer.weight)
        pre = weight @ current
        if fmt is not None:
            pre = fmt.quantize(pre)
        if layer.activation == "relu":
            current = np.maximum(pre, 0.0)
        else:
            current = pre
    return current


def precision_study(
    precisions: Sequence[str] = ("float32", "int32", "int16", "int8"),
    num_samples: int = 256,
    input_size: int = 128,
    hidden_size: int = 96,
    classes: int = 64,
    seed: int = 42,
    reference_accuracy: float = FLOAT32_REFERENCE_ACCURACY,
) -> list[PrecisionPoint]:
    """Figure 10: accuracy proxy and multiplier energy per arithmetic precision.

    Because ImageNet is not available offline, accuracy is modelled as the
    float32 reference accuracy multiplied by the fraction of inputs whose
    arg-max prediction is unchanged under quantisation (a standard proxy for
    quantisation-induced accuracy loss).  The multiply energies come from the
    Table I-derived figures quoted in the paper.
    """
    from repro.experiments import run_experiment

    result = run_experiment(
        "fig10_precision",
        grid={"precision": tuple(str(precision) for precision in precisions)},
        params={
            "num_samples": int(num_samples),
            "input_size": int(input_size),
            "hidden_size": int(hidden_size),
            "classes": int(classes),
            "reference_accuracy": float(reference_accuracy),
        },
        seed=int(seed),
    )
    return result.legacy()
