"""Analysis layer: regenerates every table and figure of the evaluation.

Each module corresponds to one or more experiments:

* :mod:`repro.analysis.speedup` — Figure 6 (speedup over CPU dense).
* :mod:`repro.analysis.energy_efficiency` — Figure 7 (energy efficiency).
* :mod:`repro.analysis.design_space` — Figures 8 (FIFO depth), 9 (SRAM
  width) and 10 (arithmetic precision).
* :mod:`repro.analysis.scalability` — Figures 11 (speedup vs #PEs), 12
  (padding-zero overhead) and 13 (load balance vs #PEs).
* :mod:`repro.analysis.tables` — Tables I-V.
* :mod:`repro.analysis.report` — plain-text rendering helpers used by the
  benchmark harness and the examples.
"""

from repro.analysis.ablation import (
    CodebookBitsPoint,
    IndexWidthPoint,
    codebook_bits_ablation,
    index_width_ablation,
    partitioning_ablation,
)
from repro.analysis.design_space import (
    PrecisionPoint,
    SramWidthPoint,
    fifo_depth_sweep,
    precision_study,
    sram_width_sweep,
)
from repro.analysis.energy_efficiency import energy_efficiency_table, layer_energies
from repro.analysis.report import format_table, geometric_mean, render_series
from repro.analysis.scalability import ScalabilityPoint, pe_sweep
from repro.analysis.speedup import SPEEDUP_CONFIGS, layer_times, speedup_table
from repro.analysis.tables import (
    table1_rows,
    table2_rows,
    table3_rows,
    table4_rows,
    table5_rows,
)

__all__ = [
    "CodebookBitsPoint",
    "IndexWidthPoint",
    "PrecisionPoint",
    "SPEEDUP_CONFIGS",
    "ScalabilityPoint",
    "SramWidthPoint",
    "codebook_bits_ablation",
    "index_width_ablation",
    "partitioning_ablation",
    "energy_efficiency_table",
    "fifo_depth_sweep",
    "format_table",
    "geometric_mean",
    "layer_energies",
    "layer_times",
    "pe_sweep",
    "precision_study",
    "render_series",
    "speedup_table",
    "sram_width_sweep",
    "table1_rows",
    "table2_rows",
    "table3_rows",
    "table4_rows",
    "table5_rows",
]
