"""Builders for Tables I-V of the paper.

Each function returns a list of plain dictionaries (one per table row) so the
benchmark harness can both print the rows and compare selected cells against
the paper's published values.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.baselines.platforms import build_table5
from repro.baselines.roofline import RooflinePlatform
from repro.baselines.specs import CPU_CORE_I7_5930K, GPU_TITAN_X, MOBILE_GPU_TEGRA_K1
from repro.core.config import EIEConfig
from repro.hardware.area import PEAreaModel
from repro.hardware.energy import ENERGY_TABLE_45NM
from repro.workloads.benchmarks import BENCHMARK_NAMES, LayerSpec, get_benchmark, resolve_spec
from repro.workloads.generator import WorkloadBuilder

__all__ = ["table1_rows", "table2_rows", "table3_rows", "table4_rows", "table5_rows"]


def table1_rows() -> list[dict[str, object]]:
    """Table I: energy per operation in a 45 nm process."""
    return [
        {
            "operation": operation.name,
            "energy_pj": operation.energy_pj,
            "relative_cost": operation.relative_cost,
        }
        for operation in ENERGY_TABLE_45NM.as_operations()
    ]


def table2_rows() -> list[dict[str, object]]:
    """Table II: power/area of one PE broken down by component and module."""
    return PEAreaModel().breakdown_rows()


def table3_rows() -> list[dict[str, object]]:
    """Table III: the nine benchmark layers and their sparsity statistics."""
    rows = []
    for name in BENCHMARK_NAMES:
        spec = get_benchmark(name)
        rows.append(
            {
                "layer": spec.name,
                "size": f"{spec.input_size} x {spec.output_size}",
                "weight_density": spec.weight_density,
                "activation_density": spec.activation_density,
                "flop_fraction": spec.flop_fraction,
                "description": spec.description,
            }
        )
    return rows


def table4_rows(
    benchmarks: "Iterable[str | LayerSpec]" = BENCHMARK_NAMES,
    builder: WorkloadBuilder | None = None,
    eie_config: EIEConfig | None = None,
) -> list[dict[str, object]]:
    """Table IV: per-frame wall-clock time (us) for every platform and kernel.

    Rows cover CPU/GPU/mGPU at batch 1 and 64 with dense and sparse kernels,
    plus EIE's theoretical and actual (load-imbalance-affected) times.
    """
    builder = builder or WorkloadBuilder()
    eie_config = eie_config or EIEConfig()
    platforms = {
        "CPU": RooflinePlatform(CPU_CORE_I7_5930K),
        "GPU": RooflinePlatform(GPU_TITAN_X),
        "mGPU": RooflinePlatform(MOBILE_GPU_TEGRA_K1),
    }
    rows: list[dict[str, object]] = []
    for platform_name, model in platforms.items():
        for batch in (1, 64):
            for kernel in ("dense", "sparse"):
                row: dict[str, object] = {
                    "platform": platform_name,
                    "batch": batch,
                    "kernel": kernel,
                }
                for benchmark in benchmarks:
                    spec = resolve_spec(benchmark)
                    time_s = model.time_s(spec, compressed=(kernel == "sparse"), batch=batch)
                    row[spec.name] = time_s * 1e6
                rows.append(row)
    theoretical_row: dict[str, object] = {"platform": "EIE", "batch": 1, "kernel": "theoretical"}
    actual_row: dict[str, object] = {"platform": "EIE", "batch": 1, "kernel": "actual"}
    for benchmark in benchmarks:
        spec = resolve_spec(benchmark)
        workload = builder.build(spec, eie_config.num_pes)
        stats = workload.simulate(eie_config)
        theoretical_row[spec.name] = stats.theoretical_time_s * 1e6
        actual_row[spec.name] = stats.time_s * 1e6
    rows.append(theoretical_row)
    rows.append(actual_row)
    return rows


def table5_rows(builder: WorkloadBuilder | None = None) -> list[dict[str, object]]:
    """Table V: platform comparison on AlexNet FC7."""
    rows = []
    for comparison in build_table5(builder=builder):
        rows.append(
            {
                "platform": comparison.name,
                "type": comparison.platform_type,
                "year": comparison.year,
                "technology_nm": comparison.technology_nm,
                "clock_mhz": comparison.clock_mhz,
                "memory": comparison.memory_type,
                "quantization": comparison.quantization,
                "max_model_params": comparison.max_model_params,
                "area_mm2": comparison.area_mm2,
                "power_w": comparison.power_w,
                "throughput_fps": comparison.throughput_fps,
                "area_efficiency_fps_mm2": comparison.area_efficiency,
                "energy_efficiency_fpj": comparison.energy_efficiency,
            }
        )
    return rows
