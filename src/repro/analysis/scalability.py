"""Scalability study: Figures 11, 12 and 13.

Sweeping the number of PEs from 1 to 256 (FIFO depth 8) per benchmark:

* Figure 11 — speedup relative to a single PE (near-linear except NT-We,
  whose 600 rows spread too thinly over many PEs);
* Figure 12 — real work / total work: padding zeros *decrease* with more PEs
  because each PE's local column slice gets shorter, so zero runs longer than
  15 become rarer;
* Figure 13 — load-balance efficiency: more PEs means fewer entries per PE
  per column and therefore more variance, i.e. worse balance.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.workloads.benchmarks import BENCHMARK_NAMES, LayerSpec, resolve_spec
from repro.workloads.generator import WorkloadBuilder

__all__ = ["ScalabilityPoint", "pe_sweep", "DEFAULT_PE_COUNTS"]

#: PE counts swept in Figures 11-13.
DEFAULT_PE_COUNTS: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256)


@dataclass(frozen=True)
class ScalabilityPoint:
    """Results for one (benchmark, PE count) pair.

    Attributes:
        benchmark: benchmark name.
        num_pes: number of PEs simulated.
        total_cycles: wall-clock cycles of the layer.
        speedup_vs_1pe: cycles at one PE divided by cycles at this PE count.
        load_balance_efficiency: 1 - bubble cycles / total cycles (Figure 13).
        real_work_fraction: useful entries / stored entries (Figure 12).
    """

    benchmark: str
    num_pes: int
    total_cycles: int
    speedup_vs_1pe: float
    load_balance_efficiency: float
    real_work_fraction: float


def pe_sweep(
    pe_counts: Sequence[int] = DEFAULT_PE_COUNTS,
    benchmarks: "Iterable[str | LayerSpec]" = BENCHMARK_NAMES,
    fifo_depth: int = 8,
    builder: WorkloadBuilder | None = None,
    clock_mhz: float = 800.0,
) -> dict[str, list[ScalabilityPoint]]:
    """Run the PE-count sweep behind Figures 11, 12 and 13.

    Returns one list of :class:`ScalabilityPoint` per benchmark, ordered by
    PE count.  The speedup is measured against the smallest PE count in the
    sweep (the paper uses 1 PE).

    Back-compat shim over the ``"fig11_scalability"`` experiment of
    :mod:`repro.experiments` (timing runs through the registry's ``"cycle"``
    engine, one preparation per PE count, shared in the run's session).
    """
    from repro.experiments import run_experiment

    result = run_experiment(
        "fig11_scalability",
        builder=builder,
        workloads=[resolve_spec(benchmark) for benchmark in benchmarks],
        grid={"num_pes": tuple(int(num_pes) for num_pes in pe_counts)},
        config={"fifo_depth": int(fifo_depth), "clock_mhz": float(clock_mhz)},
    )
    return result.legacy()
