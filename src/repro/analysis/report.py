"""Plain-text rendering helpers shared by the benchmark harness and examples."""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping, Sequence

__all__ = ["geometric_mean", "format_table", "render_series", "format_number"]


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (the aggregation Figures 6-7 use)."""
    values = [float(value) for value in values]
    if not values:
        return 0.0
    if any(value <= 0 for value in values):
        raise ValueError("geometric mean requires strictly positive values")
    return math.exp(sum(math.log(value) for value in values) / len(values))


def format_number(value: object, precision: int = 3) -> str:
    """Render a number compactly (scientific only when needed)."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, (int,)):
        return f"{value:,}"
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e6 or magnitude < 1e-3:
            return f"{value:.{precision}e}"
        return f"{value:,.{precision}f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render rows as an aligned plain-text table."""
    rendered_rows = [[format_number(cell) for cell in row] for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
            else:
                widths.append(len(cell))
    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(str(cell).ljust(widths[index]) for index, cell in enumerate(cells))

    lines = [render_row([str(header) for header in headers])]
    lines.append("  ".join("-" * width for width in widths))
    lines.extend(render_row(row) for row in rendered_rows)
    return "\n".join(lines)


def render_series(series: Mapping[str, Mapping[object, float]], x_label: str = "x") -> str:
    """Render a {series name: {x: y}} mapping as a table with one row per x.

    Used for the figure reproductions: each series is one line of the paper's
    plot (e.g. one benchmark), each row one x value (e.g. one FIFO depth).
    """
    x_values: list[object] = []
    for points in series.values():
        for x in points:
            if x not in x_values:
                x_values.append(x)
    headers = [x_label] + list(series)
    rows = []
    for x in x_values:
        row: list[object] = [x]
        for name in series:
            row.append(series[name].get(x))
        rows.append(row)
    return format_table(headers, rows)
