"""Figure 7: energy efficiency of every platform over CPU dense at batch 1.

Energy is computation time multiplied by the platform's power while running
M x V (the paper measures power with pcm-power / nvidia-smi / a power meter;
we use the same per-platform power figures as Table V).  EIE's power comes
from the per-PE Table II breakdown plus the LNZD tree.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.analysis.report import geometric_mean
from repro.analysis.speedup import GEOMEAN_KEY, SPEEDUP_CONFIGS
from repro.baselines.roofline import RooflinePlatform
from repro.baselines.specs import CPU_CORE_I7_5930K, GPU_TITAN_X, MOBILE_GPU_TEGRA_K1
from repro.core.config import EIEConfig
from repro.hardware.area import chip_power_w
from repro.workloads.benchmarks import BENCHMARK_NAMES, LayerSpec, resolve_spec
from repro.workloads.generator import WorkloadBuilder

__all__ = ["layer_energies", "energy_efficiency_table"]


def layer_energies(
    benchmark: "str | LayerSpec",
    builder: WorkloadBuilder,
    eie_config: EIEConfig | None = None,
    batch: int = 1,
) -> dict[str, float]:
    """Per-frame energy in joules of every Figure 7 configuration for one layer."""
    eie_config = eie_config or EIEConfig()
    spec = resolve_spec(benchmark)
    cpu = RooflinePlatform(CPU_CORE_I7_5930K)
    gpu = RooflinePlatform(GPU_TITAN_X)
    mgpu = RooflinePlatform(MOBILE_GPU_TEGRA_K1)
    workload = builder.build(spec, eie_config.num_pes)
    eie_stats = workload.simulate(eie_config)
    eie_power = chip_power_w(eie_config.num_pes)
    return {
        "CPU Dense": cpu.dense_time_s(spec, batch) * CPU_CORE_I7_5930K.power_w,
        "CPU Compressed": cpu.sparse_time_s(spec, batch) * CPU_CORE_I7_5930K.power_w,
        "GPU Dense": gpu.dense_time_s(spec, batch) * GPU_TITAN_X.power_w,
        "GPU Compressed": gpu.sparse_time_s(spec, batch) * GPU_TITAN_X.power_w,
        "mGPU Dense": mgpu.dense_time_s(spec, batch) * MOBILE_GPU_TEGRA_K1.power_w,
        "mGPU Compressed": mgpu.sparse_time_s(spec, batch) * MOBILE_GPU_TEGRA_K1.power_w,
        "EIE": eie_stats.time_s * eie_power,
    }


def energy_efficiency_table(
    benchmarks: "Iterable[str | LayerSpec]" = BENCHMARK_NAMES,
    builder: WorkloadBuilder | None = None,
    eie_config: EIEConfig | None = None,
    batch: int = 1,
) -> dict[str, dict[str, float]]:
    """Figure 7 data: energy efficiency relative to CPU dense, per layer.

    Returns ``{benchmark: {configuration: efficiency}}`` plus a ``"Geo Mean"``
    entry; efficiency is CPU-dense energy divided by the configuration's
    energy (larger is better).
    """
    builder = builder or WorkloadBuilder()
    table: dict[str, dict[str, float]] = {}
    for benchmark in benchmarks:
        spec = resolve_spec(benchmark)
        energies = layer_energies(spec, builder, eie_config, batch)
        baseline = energies["CPU Dense"]
        table[spec.name] = {name: baseline / energies[name] for name in SPEEDUP_CONFIGS}
    table[GEOMEAN_KEY] = {
        name: geometric_mean(
            [table[benchmark][name] for benchmark in table if benchmark != GEOMEAN_KEY]
        )
        for name in SPEEDUP_CONFIGS
    }
    return table
