"""Figure 7: energy efficiency of every platform over CPU dense at batch 1.

Energy is computation time multiplied by the platform's power while running
M x V (the paper measures power with pcm-power / nvidia-smi / a power meter;
we use the same per-platform power figures as Table V).  EIE's power comes
from the per-PE Table II breakdown plus the LNZD tree.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.baselines.roofline import RooflinePlatform
from repro.baselines.specs import CPU_CORE_I7_5930K, GPU_TITAN_X, MOBILE_GPU_TEGRA_K1
from repro.core.config import EIEConfig
from repro.hardware.area import chip_power_w
from repro.workloads.benchmarks import BENCHMARK_NAMES, LayerSpec, resolve_spec
from repro.workloads.generator import WorkloadBuilder

__all__ = ["layer_energies", "energy_efficiency_table"]


def layer_energies(
    benchmark: "str | LayerSpec",
    builder: WorkloadBuilder,
    eie_config: EIEConfig | None = None,
    batch: int = 1,
) -> dict[str, float]:
    """Per-frame energy in joules of every Figure 7 configuration for one layer."""
    eie_config = eie_config or EIEConfig()
    spec = resolve_spec(benchmark)
    cpu = RooflinePlatform(CPU_CORE_I7_5930K)
    gpu = RooflinePlatform(GPU_TITAN_X)
    mgpu = RooflinePlatform(MOBILE_GPU_TEGRA_K1)
    workload = builder.build(spec, eie_config.num_pes)
    eie_stats = workload.simulate(eie_config)
    eie_power = chip_power_w(eie_config.num_pes)
    return {
        "CPU Dense": cpu.dense_time_s(spec, batch) * CPU_CORE_I7_5930K.power_w,
        "CPU Compressed": cpu.sparse_time_s(spec, batch) * CPU_CORE_I7_5930K.power_w,
        "GPU Dense": gpu.dense_time_s(spec, batch) * GPU_TITAN_X.power_w,
        "GPU Compressed": gpu.sparse_time_s(spec, batch) * GPU_TITAN_X.power_w,
        "mGPU Dense": mgpu.dense_time_s(spec, batch) * MOBILE_GPU_TEGRA_K1.power_w,
        "mGPU Compressed": mgpu.sparse_time_s(spec, batch) * MOBILE_GPU_TEGRA_K1.power_w,
        "EIE": eie_stats.time_s * eie_power,
    }


def energy_efficiency_table(
    benchmarks: "Iterable[str | LayerSpec]" = BENCHMARK_NAMES,
    builder: WorkloadBuilder | None = None,
    eie_config: EIEConfig | None = None,
    batch: int = 1,
) -> dict[str, dict[str, float]]:
    """Figure 7 data: energy efficiency relative to CPU dense, per layer.

    Returns ``{benchmark: {configuration: efficiency}}`` plus a ``"Geo Mean"``
    entry; efficiency is CPU-dense energy divided by the configuration's
    energy (larger is better).

    Back-compat shim over the ``"fig7_energy_efficiency"`` experiment of
    :mod:`repro.experiments`.
    """
    from repro.experiments import run_experiment

    result = run_experiment(
        "fig7_energy_efficiency",
        builder=builder,
        workloads=[resolve_spec(benchmark) for benchmark in benchmarks],
        config=eie_config,
        params={"batch": int(batch)},
    )
    return result.legacy()
