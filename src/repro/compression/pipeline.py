"""End-to-end Deep Compression pipeline producing EIE-ready layers.

:class:`DeepCompressor` chains the three stages (pruning, weight sharing and
relative-indexed interleaved CSC encoding) and returns a
:class:`CompressedLayer`, which is the unit the EIE simulators load into
their processing elements.  The layer also knows how to report its storage
footprint (with or without the optional Huffman stage) so that the
compression-ratio claims of the paper can be checked.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, fields
from typing import Any, Mapping

import numpy as np

from repro.compression.csc import DEFAULT_MAX_RUN, InterleavedCSC
from repro.compression.huffman import HuffmanCode
from repro.compression.pruning import prune_to_density
from repro.compression.quantization import WeightCodebook
from repro.errors import CompressionError, ConfigurationError
from repro.utils.rng import make_rng
from repro.utils.validation import require_matrix

__all__ = [
    "CompressionConfig",
    "CompressedLayer",
    "DeepCompressor",
    "weights_fingerprint",
]


def weights_fingerprint(weights: np.ndarray) -> str:
    """Content hash of a dense weight matrix, usable as a cache key.

    The digest covers the element bytes, dtype and shape, so two arrays with
    the same values but different shapes (or precisions) never collide.  The
    engine :class:`~repro.engine.session.Session` keys its compressed-layer
    cache on this, letting design-space sweeps compress each layer once.
    """
    weights = np.ascontiguousarray(weights)
    digest = hashlib.sha256()
    digest.update(str(weights.dtype).encode())
    digest.update(str(weights.shape).encode())
    digest.update(weights.tobytes())
    return digest.hexdigest()


@dataclass(frozen=True)
class CompressionConfig:
    """Parameters of the Deep Compression pipeline.

    Attributes:
        target_density: fraction of weights to keep when pruning; ``None``
            keeps the matrix's existing sparsity pattern (useful when the
            input is already sparse).
        index_bits: bits per weight index (4 in the paper, 16-entry codebook).
        max_run: largest zero run representable by the relative index
            (``2**index_bits - 1``).
        codebook_seed: RNG seed for the k-means codebook fit.
    """

    target_density: float | None = None
    index_bits: int = 4
    max_run: int = DEFAULT_MAX_RUN
    codebook_seed: int = 0

    def __post_init__(self) -> None:
        if self.target_density is not None and not 0.0 < self.target_density <= 1.0:
            raise CompressionError(
                f"target_density must be in (0, 1], got {self.target_density}"
            )
        if self.index_bits < 1:
            raise CompressionError(f"index_bits must be >= 1, got {self.index_bits}")
        if self.max_run < 1 or self.max_run > 2**self.index_bits - 1:
            raise CompressionError(
                f"max_run must be in [1, {2**self.index_bits - 1}], got {self.max_run}"
            )

    def to_dict(self) -> dict[str, Any]:
        """All pipeline parameters as a plain JSON-serializable mapping."""
        return {spec.name: getattr(self, spec.name) for spec in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CompressionConfig":
        """Build a configuration from a (possibly partial) field mapping.

        Missing fields take their defaults; unknown keys are rejected with a
        :class:`~repro.errors.ConfigurationError` naming the offending key.
        """
        known = {spec.name for spec in fields(cls)}
        for key in data:
            if key not in known:
                raise ConfigurationError(
                    f"CompressionConfig has no field {key!r}; "
                    f"valid fields: {', '.join(sorted(known))}"
                )
        return cls(**dict(data))


@dataclass
class CompressedLayer:
    """A weight matrix after Deep Compression, distributed over PEs.

    Attributes:
        name: layer label (e.g. ``"Alex-7"``).
        shape: dense shape ``(rows, cols)`` = (output size, input size).
        codebook: shared-weight table; entry 0 is the reserved zero.
        storage: interleaved CSC structure whose *values are codebook
            indices* (padding zeros carry index 0).
        num_pes: number of processing elements the layer is interleaved over.
        activation_name: non-linearity applied after the M x V (``"relu"`` or
            ``"identity"``).
    """

    name: str
    shape: tuple[int, int]
    codebook: WeightCodebook
    storage: InterleavedCSC
    num_pes: int
    activation_name: str = "relu"
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        rows, cols = self.shape
        if self.storage.num_rows != rows or self.storage.num_cols != cols:
            raise CompressionError(
                f"storage shape ({self.storage.num_rows}, {self.storage.num_cols}) "
                f"does not match layer shape {self.shape}"
            )
        if self.storage.num_pes != self.num_pes:
            raise CompressionError(
                f"storage is interleaved over {self.storage.num_pes} PEs, expected {self.num_pes}"
            )

    # -- structure ------------------------------------------------------------

    @property
    def rows(self) -> int:
        """Output size of the layer."""
        return self.shape[0]

    @property
    def cols(self) -> int:
        """Input size of the layer."""
        return self.shape[1]

    @property
    def dense_weight_count(self) -> int:
        """Number of weights in the uncompressed dense matrix."""
        return self.rows * self.cols

    @property
    def num_nonzero_weights(self) -> int:
        """Number of genuine (non-padding) stored weights."""
        return self.storage.num_true_nonzeros

    @property
    def num_stored_entries(self) -> int:
        """Stored entries including padding zeros."""
        return self.storage.num_entries

    @property
    def weight_density(self) -> float:
        """Fraction of surviving weights relative to the dense matrix."""
        return self.num_nonzero_weights / max(self.dense_weight_count, 1)

    @property
    def padding_fraction(self) -> float:
        """Fraction of stored entries that are padding zeros."""
        return self.storage.padding_fraction

    # -- reconstruction --------------------------------------------------------

    def dense_weights(self) -> np.ndarray:
        """Decode the layer back into a dense weight matrix (float64).

        The decoded matrix is cached (read-only) after the first call: the
        model layer re-reads it on every ``run_model`` propagation step, and
        the storage/codebook never change after construction.
        """
        cached = getattr(self, "_dense_weights", None)
        if cached is None:
            indices = self.storage.to_dense().astype(np.int64)
            cached = self.codebook.dequantize(indices)
            cached.setflags(write=False)
            self._dense_weights = cached
        return cached

    def reference_matvec(self, activations: np.ndarray) -> np.ndarray:
        """Golden-model ``W @ a`` on the decoded dense weights."""
        return self.dense_weights() @ np.asarray(activations, dtype=np.float64)

    # -- storage accounting ----------------------------------------------------

    def storage_bits(self, pointer_bits: int = 16) -> int:
        """Bits stored in the PE SRAMs (indices, runs, pointers, codebook)."""
        csc_bits = self.storage.storage_bits(
            value_bits=self.codebook.index_bits,
            index_bits=self.codebook.index_bits,
            pointer_bits=pointer_bits,
        )
        return csc_bits + self.codebook.storage_bits

    def compression_ratio(self, dense_bits_per_weight: int = 32) -> float:
        """Dense 32-bit storage divided by compressed storage."""
        compressed = self.storage_bits()
        if compressed == 0:
            return float("inf")
        return self.dense_weight_count * dense_bits_per_weight / compressed

    def huffman_storage_bits(self, pointer_bits: int = 16) -> int:
        """Storage if the index and run streams were Huffman coded (off-chip).

        Huffman coding is applied separately to the weight-index stream and
        the zero-run stream, as Deep Compression does; pointers and the
        codebook stay fixed-width.  Each stream is tallied with one
        vectorised ``bincount`` pass (the symbols are small non-negative
        integers), so a paper-scale layer is accounted in milliseconds.
        """
        total_bits = self.codebook.storage_bits
        total_bits += sum(
            (matrix.col_ptr.shape[0]) * pointer_bits for matrix in self.storage.per_pe
        )
        per_pe = self.storage.per_pe
        streams = (
            [np.concatenate([m.values for m in per_pe]).astype(np.int64),
             np.concatenate([m.runs for m in per_pe])]
            if per_pe
            else []
        )
        for stream in streams:
            distinct, counts = HuffmanCode._symbol_counts(stream)
            if not distinct:
                continue
            frequencies = dict(zip(distinct, counts))
            code = HuffmanCode.from_frequencies(frequencies)
            total_bits += code.weighted_bits(frequencies)
        return total_bits

    def storage_report(self) -> dict[str, float]:
        """Summary of storage and compression statistics."""
        dense_bits = self.dense_weight_count * 32
        fixed_bits = self.storage_bits()
        huffman_bits = self.huffman_storage_bits()
        return {
            "dense_bits": float(dense_bits),
            "compressed_bits": float(fixed_bits),
            "huffman_bits": float(huffman_bits),
            "compression_ratio": dense_bits / fixed_bits if fixed_bits else float("inf"),
            "huffman_compression_ratio": dense_bits / huffman_bits if huffman_bits else float("inf"),
            "weight_density": self.weight_density,
            "padding_fraction": self.padding_fraction,
        }


class DeepCompressor:
    """Runs the full Deep Compression pipeline on dense weight matrices."""

    def __init__(self, config: CompressionConfig | None = None) -> None:
        self.config = config or CompressionConfig()

    def compress(
        self,
        weights: np.ndarray,
        num_pes: int,
        name: str = "layer",
        activation_name: str = "relu",
    ) -> CompressedLayer:
        """Compress ``weights`` and interleave the result over ``num_pes`` PEs.

        Steps: optional magnitude pruning to the configured density, k-means
        weight sharing into a ``2**index_bits``-entry codebook with a reserved
        zero, then relative-indexed CSC encoding of the index matrix,
        interleaved row-wise over the PEs.
        """
        weights = np.asarray(require_matrix("weights", weights), dtype=np.float64)
        if num_pes < 1:
            raise CompressionError(f"num_pes must be >= 1, got {num_pes}")
        if self.config.target_density is not None:
            pruned = prune_to_density(weights, self.config.target_density).weights
        else:
            # Pruning is a no-op: the matrix is only read from here on, so the
            # caller's array is used as-is (no dense copy).
            pruned = weights
        nonzero_values = pruned[pruned != 0.0]
        if nonzero_values.size == 0:
            raise CompressionError(f"layer {name!r} has no non-zero weights after pruning")
        rng = make_rng(self.config.codebook_seed)
        codebook = WeightCodebook.fit(
            nonzero_values, index_bits=self.config.index_bits, rng=rng
        )
        indices = codebook.quantize(pruned)
        storage = InterleavedCSC.from_dense(
            indices.astype(np.float64), num_pes=num_pes, max_run=self.config.max_run
        )
        return CompressedLayer(
            name=name,
            shape=tuple(weights.shape),
            codebook=codebook,
            storage=storage,
            num_pes=num_pes,
            activation_name=activation_name,
            metadata={"pruned_density": nonzero_values.size / pruned.size},
        )
