"""Weight sharing via k-means codebooks.

Deep Compression replaces each surviving weight with a 4-bit index into a
16-entry table of shared weights (the codebook).  EIE's weight decoder is a
16-entry lookup table that expands the 4-bit virtual weight into a 16-bit
fixed-point real weight before the multiply-accumulate.

Entry 0 of the codebook is reserved for the value 0.0 so that the padding
zeros inserted by the relative-indexed CSC encoding (runs of more than 15
zeros) decode exactly to zero and contribute nothing to the accumulation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CompressionError
from repro.utils.rng import make_rng

__all__ = ["kmeans_codebook", "WeightCodebook"]


def kmeans_codebook(
    values: np.ndarray,
    num_clusters: int,
    rng: np.random.Generator | int | None = None,
    max_iterations: int = 30,
    init: str = "linear",
) -> np.ndarray:
    """Cluster ``values`` into ``num_clusters`` centroids with Lloyd's algorithm.

    Deep Compression initialises the centroids linearly between the minimum
    and maximum weight (``init="linear"``), which the authors found preserves
    the long tails of the weight distribution better than random or
    density-based initialisation.  ``init="random"`` samples initial centroids
    from the data.

    Returns the sorted centroid array of length ``num_clusters``.
    """
    values = np.asarray(values, dtype=np.float64).ravel()
    if values.size == 0:
        raise CompressionError("cannot build a codebook from an empty value set")
    if num_clusters < 1:
        raise CompressionError(f"num_clusters must be >= 1, got {num_clusters}")
    rng = make_rng(rng)
    unique_values = np.unique(values)
    if unique_values.size <= num_clusters:
        # Degenerate case: fewer distinct values than clusters.
        centroids = np.full(num_clusters, unique_values[-1], dtype=np.float64)
        centroids[: unique_values.size] = unique_values
        return np.sort(centroids)
    if init == "linear":
        centroids = np.linspace(values.min(), values.max(), num_clusters)
    elif init == "random":
        centroids = rng.choice(unique_values, size=num_clusters, replace=False)
    else:
        raise CompressionError(f"unknown init {init!r}; expected 'linear' or 'random'")
    centroids = np.sort(np.asarray(centroids, dtype=np.float64))
    for _ in range(max_iterations):
        # Assign each value to its nearest centroid.
        assignments = np.argmin(np.abs(values[:, None] - centroids[None, :]), axis=1)
        new_centroids = centroids.copy()
        for cluster in range(num_clusters):
            members = values[assignments == cluster]
            if members.size:
                new_centroids[cluster] = members.mean()
        new_centroids = np.sort(new_centroids)
        if np.allclose(new_centroids, centroids, rtol=0.0, atol=1e-12):
            centroids = new_centroids
            break
        centroids = new_centroids
    return centroids


@dataclass
class WeightCodebook:
    """A shared-weight table with a reserved zero entry.

    Attributes:
        centroids: the table ``S`` of shared weight values; ``centroids[0]``
            is always exactly ``0.0``.
        index_bits: number of bits per stored index (4 in the paper).
    """

    centroids: np.ndarray
    index_bits: int = 4

    def __post_init__(self) -> None:
        self.centroids = np.asarray(self.centroids, dtype=np.float64)
        if self.centroids.ndim != 1:
            raise CompressionError("centroids must be a 1-D array")
        if self.index_bits < 1:
            raise CompressionError(f"index_bits must be >= 1, got {self.index_bits}")
        if self.centroids.size > 2**self.index_bits:
            raise CompressionError(
                f"{self.centroids.size} centroids do not fit in {self.index_bits}-bit indices"
            )
        if self.centroids.size == 0 or self.centroids[0] != 0.0:
            raise CompressionError("centroids[0] must be the reserved zero entry")

    @classmethod
    def fit(
        cls,
        nonzero_values: np.ndarray,
        index_bits: int = 4,
        rng: np.random.Generator | int | None = None,
    ) -> "WeightCodebook":
        """Build a codebook for ``nonzero_values`` with a reserved zero entry.

        One of the ``2**index_bits`` entries is the reserved zero, leaving
        ``2**index_bits - 1`` k-means centroids for the non-zero weights (15
        shared weights in the paper's 4-bit configuration).
        """
        nonzero_values = np.asarray(nonzero_values, dtype=np.float64).ravel()
        nonzero_values = nonzero_values[nonzero_values != 0.0]
        if nonzero_values.size == 0:
            raise CompressionError("cannot fit a codebook: no non-zero weights")
        num_shared = 2**index_bits - 1
        centroids = kmeans_codebook(nonzero_values, num_shared, rng=rng)
        return cls(centroids=np.concatenate([[0.0], centroids]), index_bits=index_bits)

    @property
    def size(self) -> int:
        """Number of codebook entries."""
        return int(self.centroids.size)

    @property
    def zero_index(self) -> int:
        """Index of the reserved zero entry (always 0)."""
        return 0

    def quantize(self, values: np.ndarray) -> np.ndarray:
        """Map ``values`` to codebook indices (zeros map to the zero entry)."""
        values = np.asarray(values, dtype=np.float64)
        flat = values.ravel()
        indices = np.argmin(np.abs(flat[:, None] - self.centroids[None, :]), axis=1)
        indices = indices.astype(np.int64)
        indices[flat == 0.0] = self.zero_index
        return indices.reshape(values.shape)

    def dequantize(self, indices: np.ndarray) -> np.ndarray:
        """Expand codebook indices back to shared weight values."""
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= self.size):
            raise CompressionError(
                f"indices must be in [0, {self.size - 1}], got range "
                f"[{indices.min()}, {indices.max()}]"
            )
        return self.centroids[indices]

    def quantization_error(self, values: np.ndarray) -> float:
        """Root-mean-square error introduced by weight sharing on ``values``."""
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return 0.0
        reconstructed = self.dequantize(self.quantize(values))
        return float(np.sqrt(np.mean((reconstructed - values) ** 2)))

    @property
    def storage_bits(self) -> int:
        """Bits needed to store the codebook itself (16-bit entries)."""
        return self.size * 16
