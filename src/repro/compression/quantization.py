"""Weight sharing via k-means codebooks.

Deep Compression replaces each surviving weight with a 4-bit index into a
16-entry table of shared weights (the codebook).  EIE's weight decoder is a
16-entry lookup table that expands the 4-bit virtual weight into a 16-bit
fixed-point real weight before the multiply-accumulate.

Entry 0 of the codebook is reserved for the value 0.0 so that the padding
zeros inserted by the relative-indexed CSC encoding (runs of more than 15
zeros) decode exactly to zero and contribute nothing to the accumulation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import kernels
from repro.errors import CompressionError
from repro.utils.rng import make_rng

__all__ = ["kmeans_codebook", "WeightCodebook"]


def _nearest_centroid_indices(values: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Index of the nearest centroid for every value, in O(n log k).

    Exactly reproduces ``np.argmin(np.abs(values[:, None] - centroids), axis=1)``
    — including its tie-breaking — without materialising the O(n·k) distance
    matrix: the centroids are stably sorted, each value's two sorted
    neighbours are found with ``searchsorted``, the closer one wins (ties go
    to the smaller value, then to the first occurrence in the *original*
    centroid order, which is what a linear ``argmin`` scan returns).
    """
    order = np.argsort(centroids, kind="stable")
    sorted_centroids = centroids[order]
    k = sorted_centroids.shape[0]
    if k == 1:
        return np.zeros(values.shape, dtype=np.int64)
    if kernels.use_native():
        result = np.empty(values.shape[0], dtype=np.int64)
        kernels.get().nearest_assign(
            np.ascontiguousarray(values, dtype=np.float64),
            sorted_centroids,
            order.astype(np.int64, copy=False),
            result,
        )
        return result
    insertion = np.searchsorted(sorted_centroids, values)
    left = np.clip(insertion - 1, 0, k - 1)
    right = np.clip(insertion, 0, k - 1)
    left_distance = np.abs(values - sorted_centroids[left])
    right_distance = np.abs(values - sorted_centroids[right])
    prefer_left = left_distance <= right_distance
    chosen = np.where(prefer_left, left, right)
    # Duplicate centroids: argmin returns the first index holding the chosen
    # value, which (stable sort) is the first slot of its sorted run.
    if np.any(sorted_centroids[1:] == sorted_centroids[:-1]):
        chosen = np.searchsorted(sorted_centroids, sorted_centroids[chosen])
    already_sorted = bool(np.all(order == np.arange(k)))
    result = chosen if already_sorted else order[chosen]
    # Exact distance ties between two *distinct* centroid values: argmin
    # returns whichever has the smaller original index.
    tie = (left_distance == right_distance) & (
        sorted_centroids[left] != sorted_centroids[right]
    )
    if np.any(tie):
        other = np.searchsorted(
            sorted_centroids, sorted_centroids[np.where(prefer_left, right, left)]
        )
        result = np.where(tie, np.minimum(result, order[other]), result)
    return result.astype(np.int64, copy=False)


def _sorted_cluster_bounds(sorted_values: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Cluster segment boundaries for *sorted* values and sorted distinct centroids.

    Returns ``bounds`` of length ``k + 1`` with ``bounds[i]`` the first index
    of ``sorted_values`` assigned to cluster ``>= i`` — so cluster ``i`` owns
    ``sorted_values[bounds[i]:bounds[i + 1]]``.  The assignment is a monotone
    step function of the value, and each of the ``k - 1`` crossovers is found
    by binary search using the *same* float64 distance comparison
    ``|v - c[i]| <= |v - c[i + 1]|`` that ``argmin`` (and
    :func:`_nearest_centroid_indices`) evaluates, ties preferring the left
    cluster — so the implied assignments are bit-identical while the cost per
    sweep drops from O(n) to O(k log n).
    """
    k = centroids.shape[0]
    n = sorted_values.shape[0]
    bounds = np.empty(k + 1, dtype=np.intp)
    bounds[0] = 0
    bounds[k] = n
    lo = 0
    for i in range(k - 1):
        left, right = centroids[i], centroids[i + 1]
        low, high = lo, n
        while low < high:
            mid = (low + high) // 2
            value = sorted_values[mid]
            if abs(value - left) <= abs(value - right):
                low = mid + 1
            else:
                high = mid
        bounds[i + 1] = low
        lo = low
    return bounds


def kmeans_codebook(
    values: np.ndarray,
    num_clusters: int,
    rng: np.random.Generator | int | None = None,
    max_iterations: int = 30,
    init: str = "linear",
) -> np.ndarray:
    """Cluster ``values`` into ``num_clusters`` centroids with Lloyd's algorithm.

    Deep Compression initialises the centroids linearly between the minimum
    and maximum weight (``init="linear"``), which the authors found preserves
    the long tails of the weight distribution better than random or
    density-based initialisation.  ``init="random"`` samples initial centroids
    from the data.

    The iteration runs on the *unique* values with their multiplicities:
    nearest-centroid assignment uses ``searchsorted`` on the sorted centroids
    (O(n log k) per iteration instead of the O(n·k) distance matrix) with
    ``argmin``'s exact tie-break semantics, and the centroid updates are
    count-weighted means via ``np.bincount``.  Initialisation and tie-breaks
    match the per-value reference implementation, so codebooks are unchanged
    (up to float summation order inside a cluster mean).

    Returns the sorted centroid array of length ``num_clusters``.
    """
    values = np.asarray(values, dtype=np.float64).ravel()
    if values.size == 0:
        raise CompressionError("cannot build a codebook from an empty value set")
    if num_clusters < 1:
        raise CompressionError(f"num_clusters must be >= 1, got {num_clusters}")
    rng = make_rng(rng)
    unique_values, unique_counts = np.unique(values, return_counts=True)
    if unique_values.size <= num_clusters:
        # Degenerate case: fewer distinct values than clusters.
        centroids = np.full(num_clusters, unique_values[-1], dtype=np.float64)
        centroids[: unique_values.size] = unique_values
        return np.sort(centroids)
    if init == "linear":
        centroids = np.linspace(values.min(), values.max(), num_clusters)
    elif init == "random":
        centroids = rng.choice(unique_values, size=num_clusters, replace=False)
    else:
        raise CompressionError(f"unknown init {init!r}; expected 'linear' or 'random'")
    centroids = np.sort(np.asarray(centroids, dtype=np.float64))
    counts = unique_counts.astype(np.float64)
    weighted_values = unique_values * counts
    # Counts are integers, so their per-cluster totals are exact under any
    # summation order — precompute one prefix sum and read each iteration's
    # member counts off the segment boundaries for free.
    counts_prefix = np.concatenate([[0.0], np.cumsum(counts)])
    if kernels.use_native():
        # Kernel tier: the whole Lloyd iteration (assignment crossovers,
        # bincount-order member sums, convergence test) runs as one compiled
        # loop over the unique-value histogram — bit-identical to the numpy
        # sweep below (parity-suite pinned).
        return kernels.get().kmeans_sweeps(
            unique_values,
            counts,
            weighted_values,
            counts_prefix,
            centroids.copy(),
            int(max_iterations),
        )
    cluster_ids = np.arange(num_clusters, dtype=np.int64)
    for _ in range(max_iterations):
        # Assign each distinct value to its nearest centroid, then update
        # every centroid to the multiplicity-weighted mean of its members.
        # The centroids are sorted, so when they are distinct the assignment
        # over the sorted unique values reduces to k - 1 binary-searched
        # crossovers (bit-identical to the elementwise nearest search, which
        # remains the fallback for the duplicate-centroid corner case).
        if np.any(centroids[1:] == centroids[:-1]):
            assignments = _nearest_centroid_indices(unique_values, centroids)
            member_counts = np.bincount(
                assignments, weights=counts, minlength=num_clusters
            )
        else:
            bounds = _sorted_cluster_bounds(unique_values, centroids)
            segment_sizes = np.diff(bounds)
            assignments = np.repeat(cluster_ids, segment_sizes)
            member_counts = counts_prefix[bounds[1:]] - counts_prefix[bounds[:-1]]
        member_sums = np.bincount(
            assignments, weights=weighted_values, minlength=num_clusters
        )
        occupied = member_counts > 0
        new_centroids = np.where(
            occupied, member_sums / np.where(occupied, member_counts, 1.0), centroids
        )
        new_centroids = np.sort(new_centroids)
        if np.allclose(new_centroids, centroids, rtol=0.0, atol=1e-12):
            centroids = new_centroids
            break
        centroids = new_centroids
    return centroids


@dataclass
class WeightCodebook:
    """A shared-weight table with a reserved zero entry.

    Attributes:
        centroids: the table ``S`` of shared weight values; ``centroids[0]``
            is always exactly ``0.0``.
        index_bits: number of bits per stored index (4 in the paper).
    """

    centroids: np.ndarray
    index_bits: int = 4

    def __post_init__(self) -> None:
        self.centroids = np.asarray(self.centroids, dtype=np.float64)
        if self.centroids.ndim != 1:
            raise CompressionError("centroids must be a 1-D array")
        if self.index_bits < 1:
            raise CompressionError(f"index_bits must be >= 1, got {self.index_bits}")
        if self.centroids.size > 2**self.index_bits:
            raise CompressionError(
                f"{self.centroids.size} centroids do not fit in {self.index_bits}-bit indices"
            )
        if self.centroids.size == 0 or self.centroids[0] != 0.0:
            raise CompressionError("centroids[0] must be the reserved zero entry")

    @classmethod
    def fit(
        cls,
        nonzero_values: np.ndarray,
        index_bits: int = 4,
        rng: np.random.Generator | int | None = None,
    ) -> "WeightCodebook":
        """Build a codebook for ``nonzero_values`` with a reserved zero entry.

        One of the ``2**index_bits`` entries is the reserved zero, leaving
        ``2**index_bits - 1`` k-means centroids for the non-zero weights (15
        shared weights in the paper's 4-bit configuration).
        """
        nonzero_values = np.asarray(nonzero_values, dtype=np.float64).ravel()
        nonzero_values = nonzero_values[nonzero_values != 0.0]
        if nonzero_values.size == 0:
            raise CompressionError("cannot fit a codebook: no non-zero weights")
        num_shared = 2**index_bits - 1
        centroids = kmeans_codebook(nonzero_values, num_shared, rng=rng)
        return cls(centroids=np.concatenate([[0.0], centroids]), index_bits=index_bits)

    @property
    def size(self) -> int:
        """Number of codebook entries."""
        return int(self.centroids.size)

    @property
    def zero_index(self) -> int:
        """Index of the reserved zero entry (always 0)."""
        return 0

    def quantize(self, values: np.ndarray) -> np.ndarray:
        """Map ``values`` to codebook indices (zeros map to the zero entry).

        Nearest-centroid search runs in O(n log k) via
        :func:`_nearest_centroid_indices`, bit-identical to the former
        O(n·k) ``argmin`` over the full distance matrix.
        """
        values = np.asarray(values, dtype=np.float64)
        flat = values.ravel()
        # Zeros map to the reserved zero entry by definition, so the nearest
        # search only ever runs on the non-zero values — on a pruned paper
        # layer that is ~10x fewer elements than the dense matrix.
        indices = np.zeros(flat.shape[0], dtype=np.int64)
        nonzero = np.flatnonzero(flat)
        if nonzero.size:
            indices[nonzero] = _nearest_centroid_indices(flat[nonzero], self.centroids)
        return indices.reshape(values.shape)

    def dequantize(self, indices: np.ndarray) -> np.ndarray:
        """Expand codebook indices back to shared weight values."""
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= self.size):
            raise CompressionError(
                f"indices must be in [0, {self.size - 1}], got range "
                f"[{indices.min()}, {indices.max()}]"
            )
        return self.centroids[indices]

    def quantization_error(self, values: np.ndarray) -> float:
        """Root-mean-square error introduced by weight sharing on ``values``."""
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return 0.0
        reconstructed = self.dequantize(self.quantize(values))
        return float(np.sqrt(np.mean((reconstructed - values) ** 2)))

    @property
    def storage_bits(self) -> int:
        """Bits needed to store the codebook itself (16-bit entries)."""
        return self.size * 16
