"""Magnitude pruning of weight matrices.

Pruning is the first stage of Deep Compression: connections whose weights have
small magnitude are removed, leaving a sparse matrix with density between 4%
and 25% for the paper's benchmark layers (Table III, 'Weight%' column).
Retraining is out of scope here — the accelerator's behaviour depends only on
the sparsity pattern, not on whether the surviving weights were fine-tuned.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CompressionError
from repro.utils.validation import require_between, require_matrix

__all__ = ["PruningResult", "prune_to_density", "prune_by_threshold"]


@dataclass
class PruningResult:
    """Outcome of a pruning pass.

    Attributes:
        weights: pruned weight matrix (same shape as the input, zeros where
            connections were removed).
        mask: boolean matrix, ``True`` where a weight survived.
        threshold: magnitude threshold that was applied.
    """

    weights: np.ndarray
    mask: np.ndarray
    threshold: float

    @property
    def density(self) -> float:
        """Fraction of surviving (non-zero) weights."""
        if self.mask.size == 0:
            return 0.0
        return float(np.count_nonzero(self.mask)) / self.mask.size

    @property
    def num_nonzero(self) -> int:
        """Number of surviving weights."""
        return int(np.count_nonzero(self.mask))

    @property
    def compression_from_pruning(self) -> float:
        """Pruning-only compression ratio (dense count / surviving count)."""
        nonzero = self.num_nonzero
        if nonzero == 0:
            return float("inf")
        return self.mask.size / nonzero


def _prune_with_magnitudes(
    weights: np.ndarray, magnitudes: np.ndarray, threshold: float
) -> PruningResult:
    """Threshold pruning with a pre-computed ``|weights|`` (no second abs pass)."""
    mask = (magnitudes >= threshold) & (weights != 0.0)
    pruned = np.where(mask, weights, 0.0)
    return PruningResult(weights=pruned, mask=mask, threshold=float(threshold))


def prune_by_threshold(weights: np.ndarray, threshold: float) -> PruningResult:
    """Zero out every weight with ``|w| < threshold``."""
    weights = np.asarray(require_matrix("weights", weights), dtype=np.float64)
    if threshold < 0:
        raise CompressionError(f"threshold must be >= 0, got {threshold}")
    return _prune_with_magnitudes(weights, np.abs(weights), threshold)


def prune_to_density(weights: np.ndarray, density: float) -> PruningResult:
    """Prune ``weights`` so that approximately ``density`` of them survive.

    The threshold is the ``(1 - density)`` quantile of the absolute values, so
    the largest-magnitude weights are kept.  ``density=1`` keeps everything;
    ``density`` must be in (0, 1].
    """
    weights = np.asarray(require_matrix("weights", weights), dtype=np.float64)
    require_between("density", density, 0.0, 1.0)
    if density <= 0.0:
        raise CompressionError("density must be > 0; an empty layer is not meaningful")
    if density >= 1.0:
        mask = weights != 0.0
        return PruningResult(weights=weights.copy(), mask=mask, threshold=0.0)
    # One |weights| materialization serves the threshold selection, the
    # surviving mask and the tie-trim ordering below.
    magnitudes = np.abs(weights)
    size = magnitudes.size
    keep = max(1, int(round(density * size)))
    # The threshold is the magnitude of the keep-th largest weight — the
    # (size - keep)-th order statistic of all magnitudes.  Zeros sort first,
    # so when the rank falls inside the zero block the threshold is 0 and
    # otherwise the same element is found by partitioning only the non-zero
    # magnitudes (~10x fewer on a pruned-density paper layer).
    rank = size - keep
    nonzero_magnitudes = magnitudes[magnitudes != 0.0]
    num_zeros = size - nonzero_magnitudes.size
    if rank < num_zeros:
        threshold = 0.0
    else:
        nonzero_rank = rank - num_zeros
        threshold = float(np.partition(nonzero_magnitudes, nonzero_rank)[nonzero_rank])
    result = _prune_with_magnitudes(weights, magnitudes, threshold)
    if result.num_nonzero > keep:
        # Ties at the threshold can keep slightly too many weights; break them
        # deterministically by zeroing the excess smallest survivors (one
        # fancy-indexed assignment, same order as the stable argsort).
        surviving = np.argwhere(result.mask)
        surviving_magnitudes = magnitudes[result.mask]
        order = np.argsort(surviving_magnitudes, kind="stable")
        excess = result.num_nonzero - keep
        trim_rows, trim_cols = surviving[order[:excess]].T
        result.weights[trim_rows, trim_cols] = 0.0
        result.mask[trim_rows, trim_cols] = False
    return PruningResult(weights=result.weights, mask=result.mask, threshold=threshold)
