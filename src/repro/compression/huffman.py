"""Huffman coding of the compressed-weight index streams.

Deep Compression's final stage Huffman-codes the weight indices and the
zero-run lengths, exploiting their biased distributions to push the overall
compression ratio to 35-49x.  EIE itself stores fixed-width 4-bit fields in
SRAM (decoding Huffman on the fly would complicate the datapath), so in this
reproduction the Huffman coder is used for *storage accounting* only — it
reports how small the model file would be on disk/DRAM before it is expanded
into the PE SRAMs.
"""

from __future__ import annotations

import heapq
from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.errors import CompressionError

__all__ = ["HuffmanCode"]


@dataclass(order=True)
class _Node:
    """Internal heap node for Huffman tree construction."""

    weight: int
    order: int
    symbol: object | None = None
    left: "_Node | None" = None
    right: "_Node | None" = None


class HuffmanCode:
    """A canonical-ish Huffman code built from symbol frequencies.

    The code is deterministic for a given frequency table: ties are broken by
    insertion order of the sorted symbols, so encoding the same data always
    produces the same code table.
    """

    def __init__(self, codebook: dict[object, str]) -> None:
        if not codebook:
            raise CompressionError("cannot build an empty Huffman code")
        self.codebook = dict(codebook)
        self._decode_table = {code: symbol for symbol, code in self.codebook.items()}
        if len(self._decode_table) != len(self.codebook):
            raise CompressionError("Huffman codebook contains duplicate codes")

    # -- construction ---------------------------------------------------------

    @staticmethod
    def _symbol_counts(symbols: np.ndarray | list) -> tuple[list, list]:
        """Distinct symbols and their multiplicities, vectorised when possible.

        Small non-negative integer streams (the weight-index and zero-run
        streams of a compressed layer) are tallied with one ``bincount``
        pass; other numeric arrays fall back to ``np.unique`` and arbitrary
        objects to a :class:`collections.Counter`.  Symbols come back as
        native Python scalars, exactly as the historical list-based tally
        produced them.
        """
        array = np.asarray(symbols).ravel()
        if array.size and array.dtype.kind in "iu":
            low, high = int(array.min()), int(array.max())
            if 0 <= low and high <= 1 << 20:
                counts = np.bincount(array)
                present = np.flatnonzero(counts)
                return present.tolist(), counts[present].tolist()
        if array.dtype != object:
            uniques, counts = np.unique(array, return_counts=True)
            return uniques.tolist(), counts.tolist()
        tally = Counter(array.tolist())
        return list(tally), list(tally.values())

    @classmethod
    def from_symbols(cls, symbols: np.ndarray | list) -> "HuffmanCode":
        """Build a code from observed symbols."""
        distinct, counts = cls._symbol_counts(symbols)
        if not distinct:
            raise CompressionError("cannot build a Huffman code from no symbols")
        return cls.from_frequencies(dict(zip(distinct, counts)))

    @classmethod
    def from_frequencies(cls, frequencies: dict[object, int]) -> "HuffmanCode":
        """Build a code from a symbol -> count mapping."""
        if not frequencies:
            raise CompressionError("cannot build a Huffman code from an empty frequency table")
        if any(count <= 0 for count in frequencies.values()):
            raise CompressionError("all symbol frequencies must be positive")
        if len(frequencies) == 1:
            only_symbol = next(iter(frequencies))
            return cls({only_symbol: "0"})
        heap: list[_Node] = []
        for order, (symbol, count) in enumerate(sorted(frequencies.items(), key=lambda kv: str(kv[0]))):
            heapq.heappush(heap, _Node(weight=int(count), order=order, symbol=symbol))
        next_order = len(heap)
        while len(heap) > 1:
            low = heapq.heappop(heap)
            high = heapq.heappop(heap)
            merged = _Node(
                weight=low.weight + high.weight,
                order=next_order,
                left=low,
                right=high,
            )
            next_order += 1
            heapq.heappush(heap, merged)
        root = heap[0]
        codebook: dict[object, str] = {}

        def assign(node: _Node, prefix: str) -> None:
            if node.symbol is not None:
                codebook[node.symbol] = prefix or "0"
                return
            assert node.left is not None and node.right is not None
            assign(node.left, prefix + "0")
            assign(node.right, prefix + "1")

        assign(root, "")
        return cls(codebook)

    # -- queries --------------------------------------------------------------

    @property
    def symbols(self) -> list[object]:
        """All symbols the code can encode."""
        return list(self.codebook)

    def code_length(self, symbol: object) -> int:
        """Length in bits of the code for ``symbol``."""
        if symbol not in self.codebook:
            raise CompressionError(f"symbol {symbol!r} is not in the codebook")
        return len(self.codebook[symbol])

    def average_bits(self, frequencies: dict[object, int]) -> float:
        """Average code length weighted by ``frequencies``."""
        total = sum(frequencies.values())
        if total == 0:
            raise CompressionError("frequencies must not sum to zero")
        return self.weighted_bits(frequencies) / total

    def weighted_bits(self, frequencies: dict[object, int]) -> int:
        """Total encoded bits of a stream given its symbol -> count tally."""
        return sum(self.code_length(sym) * count for sym, count in frequencies.items())

    # -- encode / decode -------------------------------------------------------

    def encode(self, symbols: np.ndarray | list) -> str:
        """Encode a symbol sequence into a bit string."""
        symbols = list(np.asarray(symbols).ravel().tolist())
        try:
            return "".join(self.codebook[symbol] for symbol in symbols)
        except KeyError as error:
            raise CompressionError(f"symbol {error.args[0]!r} is not in the codebook") from error

    def decode(self, bits: str) -> list[object]:
        """Decode a bit string back into the original symbol sequence."""
        decoded: list[object] = []
        current = ""
        for bit in bits:
            if bit not in "01":
                raise CompressionError(f"invalid bit {bit!r} in encoded stream")
            current += bit
            if current in self._decode_table:
                decoded.append(self._decode_table[current])
                current = ""
        if current:
            raise CompressionError("encoded stream ends mid-symbol")
        return decoded

    def encoded_bits(self, symbols: np.ndarray | list) -> int:
        """Length in bits of the encoding of ``symbols`` (without encoding).

        One vectorised tally (``bincount`` for small-integer streams) plus a
        code-length sum over the few distinct symbols — same result as
        ``len(self.encode(symbols))`` without materialising the bit string or
        a per-element Python list.
        """
        distinct, counts = self._symbol_counts(symbols)
        return self.weighted_bits(dict(zip(distinct, counts)))
