"""Relative-indexed, interleaved compressed sparse column (CSC) storage.

This module implements the storage format of Section III-B of the paper:

* for every column of the (pruned) weight matrix the non-zero values ``v`` and
  their zero-run lengths ``z`` are stored as two equal-length 4-bit streams;
* if more than ``max_run`` (15) zeros precede a non-zero, a *padding zero* is
  inserted into ``v`` with a run of ``max_run`` so the 4-bit field never
  overflows (the paper's example: column ``[0,0,1,2,0×18,3]`` encodes as
  ``v=[1,2,0,3]``, ``z=[2,0,15,2]``);
* a pointer vector ``p`` (one entry per column plus a terminator) locates each
  column's slice in the shared ``v``/``z`` arrays;
* when the matrix is distributed over ``N`` processing elements, PE ``k``
  owns all rows ``i`` with ``i mod N == k`` and stores its slice of every
  column in its own CSC arrays with zero-runs counted in its local row space
  (:class:`InterleavedCSC`).

Both a readable per-column reference encoder and a vectorised counting path
(:func:`interleaved_entry_counts`, used by the cycle-level simulator on the
full-size Table III layers) are provided.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import EncodingError
from repro.utils.validation import require_matrix

__all__ = [
    "encode_column",
    "decode_column",
    "CSCMatrix",
    "InterleavedCSC",
    "interleaved_entry_counts",
    "pe_for_row",
    "local_row_index",
]

#: Largest zero-run representable in a 4-bit relative index.
DEFAULT_MAX_RUN = 15


def pe_for_row(row: int | np.ndarray, num_pes: int) -> int | np.ndarray:
    """The PE that owns ``row`` under the paper's interleaving (``row mod N``)."""
    return row % num_pes


def local_row_index(row: int | np.ndarray, num_pes: int) -> int | np.ndarray:
    """Position of ``row`` within its owning PE's local row space."""
    return row // num_pes


def encode_column(
    column: np.ndarray, max_run: int = DEFAULT_MAX_RUN
) -> tuple[np.ndarray, np.ndarray]:
    """Encode one column into (values, runs) with padding zeros.

    Returns ``(v, z)``: ``v`` holds the non-zero values (plus padding zeros)
    and ``z`` holds the number of zeros preceding each entry.  Trailing zeros
    after the last non-zero are not stored.
    """
    if max_run < 1:
        raise EncodingError(f"max_run must be >= 1, got {max_run}")
    column = np.asarray(column, dtype=np.float64)
    if column.ndim != 1:
        raise EncodingError(f"column must be 1-D, got shape {column.shape}")
    values: list[float] = []
    runs: list[int] = []
    zeros_pending = 0
    for element in column:
        if element == 0.0:
            zeros_pending += 1
            continue
        while zeros_pending > max_run:
            values.append(0.0)
            runs.append(max_run)
            zeros_pending -= max_run + 1
        values.append(float(element))
        runs.append(zeros_pending)
        zeros_pending = 0
    return np.asarray(values, dtype=np.float64), np.asarray(runs, dtype=np.int64)


def decode_column(
    values: np.ndarray, runs: np.ndarray, length: int
) -> np.ndarray:
    """Inverse of :func:`encode_column`: rebuild the dense column of ``length``."""
    values = np.asarray(values, dtype=np.float64)
    runs = np.asarray(runs, dtype=np.int64)
    if values.shape != runs.shape:
        raise EncodingError(
            f"values and runs must have equal length, got {values.shape} and {runs.shape}"
        )
    column = np.zeros(length, dtype=np.float64)
    position = -1
    for value, run in zip(values, runs):
        position += int(run) + 1
        if position >= length:
            raise EncodingError(
                f"encoded column overruns its dense length {length} (position {position})"
            )
        column[position] = value
    return column


def _encoded_positions(runs: np.ndarray) -> np.ndarray:
    """Dense row positions implied by a run-length stream."""
    runs = np.asarray(runs, dtype=np.int64)
    return np.cumsum(runs + 1) - 1


@dataclass
class CSCMatrix:
    """A relative-indexed CSC matrix (single storage domain, e.g. one PE).

    Attributes:
        values: concatenated per-column value stream (padding zeros included).
        runs: concatenated per-column zero-run stream, same length as
            ``values``; every entry is in ``[0, max_run]``.
        col_ptr: length ``num_cols + 1`` offsets into ``values``/``runs``.
        num_rows: dense row count.
        num_cols: dense column count.
        max_run: largest representable zero run (15 for 4-bit indices).
    """

    values: np.ndarray
    runs: np.ndarray
    col_ptr: np.ndarray
    num_rows: int
    num_cols: int
    max_run: int = DEFAULT_MAX_RUN

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=np.float64)
        self.runs = np.asarray(self.runs, dtype=np.int64)
        self.col_ptr = np.asarray(self.col_ptr, dtype=np.int64)
        if self.values.shape != self.runs.shape:
            raise EncodingError("values and runs must have the same length")
        if self.col_ptr.shape[0] != self.num_cols + 1:
            raise EncodingError(
                f"col_ptr must have num_cols + 1 = {self.num_cols + 1} entries, "
                f"got {self.col_ptr.shape[0]}"
            )
        if self.col_ptr[0] != 0 or self.col_ptr[-1] != self.values.shape[0]:
            raise EncodingError("col_ptr must start at 0 and end at the entry count")
        if np.any(np.diff(self.col_ptr) < 0):
            raise EncodingError("col_ptr must be non-decreasing")
        if self.runs.size and (self.runs.min() < 0 or self.runs.max() > self.max_run):
            raise EncodingError(f"runs must be within [0, {self.max_run}]")

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_dense(cls, dense: np.ndarray, max_run: int = DEFAULT_MAX_RUN) -> "CSCMatrix":
        """Encode a dense matrix column by column."""
        dense = np.asarray(require_matrix("dense", dense), dtype=np.float64)
        num_rows, num_cols = dense.shape
        value_chunks: list[np.ndarray] = []
        run_chunks: list[np.ndarray] = []
        col_ptr = np.zeros(num_cols + 1, dtype=np.int64)
        total = 0
        for j in range(num_cols):
            values, runs = encode_column(dense[:, j], max_run=max_run)
            value_chunks.append(values)
            run_chunks.append(runs)
            total += values.shape[0]
            col_ptr[j + 1] = total
        values = np.concatenate(value_chunks) if value_chunks else np.empty(0)
        runs = np.concatenate(run_chunks) if run_chunks else np.empty(0, dtype=np.int64)
        return cls(
            values=values,
            runs=runs,
            col_ptr=col_ptr,
            num_rows=num_rows,
            num_cols=num_cols,
            max_run=max_run,
        )

    # -- queries --------------------------------------------------------------

    @property
    def num_entries(self) -> int:
        """Number of stored entries, padding zeros included."""
        return int(self.values.shape[0])

    @property
    def num_padding_zeros(self) -> int:
        """Number of stored entries that are padding zeros."""
        return int(np.count_nonzero(self.values == 0.0))

    @property
    def num_true_nonzeros(self) -> int:
        """Number of stored entries carrying an actual non-zero weight."""
        return self.num_entries - self.num_padding_zeros

    @property
    def padding_fraction(self) -> float:
        """Fraction of stored entries that are padding (wasted work)."""
        if self.num_entries == 0:
            return 0.0
        return self.num_padding_zeros / self.num_entries

    def column_entries(self, column: int) -> tuple[np.ndarray, np.ndarray]:
        """The (values, runs) slice for ``column``."""
        if not 0 <= column < self.num_cols:
            raise EncodingError(f"column {column} out of range [0, {self.num_cols})")
        start, end = self.col_ptr[column], self.col_ptr[column + 1]
        return self.values[start:end], self.runs[start:end]

    def column_entry_counts(self) -> np.ndarray:
        """Entries stored per column (padding included)."""
        return np.diff(self.col_ptr)

    def column_row_indices(self, column: int) -> np.ndarray:
        """Dense row index of every stored entry in ``column``."""
        _, runs = self.column_entries(column)
        return _encoded_positions(runs)

    def to_dense(self) -> np.ndarray:
        """Decode back to a dense matrix."""
        dense = np.zeros((self.num_rows, self.num_cols), dtype=np.float64)
        for j in range(self.num_cols):
            values, runs = self.column_entries(j)
            dense[:, j] = decode_column(values, runs, self.num_rows)
        return dense

    def storage_bits(self, value_bits: int = 4, index_bits: int = 4, pointer_bits: int = 16) -> int:
        """Total storage in bits: entry streams plus the column pointer array."""
        return self.num_entries * (value_bits + index_bits) + self.col_ptr.shape[0] * pointer_bits


class InterleavedCSC:
    """A weight matrix distributed over ``N`` PEs in interleaved CSC form.

    PE ``k`` owns rows ``k, k + N, k + 2N, ...`` and stores its slice of every
    column as a :class:`CSCMatrix` whose zero runs are counted in the PE's
    local row space, exactly as Figure 3 of the paper illustrates.
    """

    def __init__(self, per_pe: list[CSCMatrix], num_rows: int, num_cols: int, num_pes: int) -> None:
        if len(per_pe) != num_pes:
            raise EncodingError(f"expected {num_pes} per-PE matrices, got {len(per_pe)}")
        for pe, matrix in enumerate(per_pe):
            expected_rows = _rows_owned_by(pe, num_rows, num_pes)
            if matrix.num_rows != expected_rows:
                raise EncodingError(
                    f"PE {pe} slice has {matrix.num_rows} rows, expected {expected_rows}"
                )
            if matrix.num_cols != num_cols:
                raise EncodingError(
                    f"PE {pe} slice has {matrix.num_cols} columns, expected {num_cols}"
                )
        self.per_pe = list(per_pe)
        self.num_rows = int(num_rows)
        self.num_cols = int(num_cols)
        self.num_pes = int(num_pes)

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_dense(
        cls, dense: np.ndarray, num_pes: int, max_run: int = DEFAULT_MAX_RUN
    ) -> "InterleavedCSC":
        """Distribute a dense matrix over ``num_pes`` PEs and encode each slice."""
        dense = np.asarray(require_matrix("dense", dense), dtype=np.float64)
        if num_pes < 1:
            raise EncodingError(f"num_pes must be >= 1, got {num_pes}")
        num_rows, num_cols = dense.shape
        slices = [
            CSCMatrix.from_dense(dense[pe::num_pes, :], max_run=max_run)
            for pe in range(num_pes)
        ]
        return cls(per_pe=slices, num_rows=num_rows, num_cols=num_cols, num_pes=num_pes)

    # -- queries --------------------------------------------------------------

    @property
    def num_entries(self) -> int:
        """Total stored entries across all PEs (padding included)."""
        return sum(matrix.num_entries for matrix in self.per_pe)

    @property
    def num_padding_zeros(self) -> int:
        """Total padding-zero entries across all PEs."""
        return sum(matrix.num_padding_zeros for matrix in self.per_pe)

    @property
    def num_true_nonzeros(self) -> int:
        """Total genuine non-zero weights stored."""
        return self.num_entries - self.num_padding_zeros

    @property
    def padding_fraction(self) -> float:
        """Fraction of stored entries that are padding zeros."""
        entries = self.num_entries
        return self.num_padding_zeros / entries if entries else 0.0

    @property
    def real_work_fraction(self) -> float:
        """Real work / total work, the quantity plotted in Figure 12."""
        return 1.0 - self.padding_fraction

    def entries_per_pe(self) -> np.ndarray:
        """Entries stored by each PE (load distribution of the whole matrix)."""
        return np.asarray([matrix.num_entries for matrix in self.per_pe], dtype=np.int64)

    def entries_per_pe_column(self) -> np.ndarray:
        """Entries per (PE, column): the work each broadcast creates per PE.

        Shape ``(num_pes, num_cols)``.  This is the key input to the
        cycle-level simulator: when activation ``a_j`` is broadcast, PE ``k``
        must process ``result[k, j]`` entries.
        """
        counts = np.zeros((self.num_pes, self.num_cols), dtype=np.int64)
        for pe, matrix in enumerate(self.per_pe):
            counts[pe, :] = matrix.column_entry_counts()
        return counts

    def global_row_index(self, pe: int, local_row: int) -> int:
        """Map a PE-local row position back to the dense row index."""
        return local_row * self.num_pes + pe

    def to_dense(self) -> np.ndarray:
        """Decode the distributed representation back into one dense matrix."""
        dense = np.zeros((self.num_rows, self.num_cols), dtype=np.float64)
        for pe, matrix in enumerate(self.per_pe):
            dense[pe::self.num_pes, :] = matrix.to_dense()
        return dense

    def storage_bits(self, value_bits: int = 4, index_bits: int = 4, pointer_bits: int = 16) -> int:
        """Total storage across all PEs."""
        return sum(
            matrix.storage_bits(value_bits, index_bits, pointer_bits) for matrix in self.per_pe
        )


def _rows_owned_by(pe: int, num_rows: int, num_pes: int) -> int:
    """Number of dense rows assigned to ``pe`` under interleaving."""
    return (num_rows - pe + num_pes - 1) // num_pes


def interleaved_entry_counts(
    row_indices: np.ndarray,
    col_ptr: np.ndarray,
    num_rows: int,
    num_pes: int,
    max_run: int = DEFAULT_MAX_RUN,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised per-(PE, column) entry counts for a sparsity pattern.

    This computes, without materialising the encoded streams, how many CSC
    entries (true non-zeros plus padding zeros) each PE stores for each
    column.  It is what the cycle-level simulator uses for the full-size
    Table III layers, where building explicit per-PE CSC arrays in Python
    would be needlessly slow.

    Args:
        row_indices: row index of every non-zero, grouped by column (CSC
            order; rows within a column must be sorted ascending).
        col_ptr: length ``num_cols + 1`` offsets into ``row_indices``.
        num_rows: dense row count.
        num_pes: number of processing elements.
        max_run: largest zero run representable without padding.

    Returns:
        ``(total_counts, padding_counts)``, both of shape
        ``(num_pes, num_cols)``.
    """
    row_indices = np.asarray(row_indices, dtype=np.int64)
    col_ptr = np.asarray(col_ptr, dtype=np.int64)
    num_cols = col_ptr.shape[0] - 1
    if num_cols < 0:
        raise EncodingError("col_ptr must have at least one entry")
    if row_indices.size and (row_indices.min() < 0 or row_indices.max() >= num_rows):
        raise EncodingError("row indices out of range")
    nnz_counts = np.zeros((num_pes, num_cols), dtype=np.int64)
    padding_counts = np.zeros((num_pes, num_cols), dtype=np.int64)
    if row_indices.size == 0:
        return nnz_counts, padding_counts

    columns = np.repeat(np.arange(num_cols, dtype=np.int64), np.diff(col_ptr))
    pes = row_indices % num_pes
    locals_ = row_indices // num_pes
    groups = columns * num_pes + pes

    # Non-zero counts per (pe, column).
    flat_nnz = np.bincount(pes * num_cols + columns, minlength=num_pes * num_cols)
    nnz_counts = flat_nnz.reshape(num_pes, num_cols)

    # Padding zeros: for each (column, pe) group, gaps of local positions.
    order = np.lexsort((locals_, groups))
    sorted_groups = groups[order]
    sorted_locals = locals_[order]
    previous_locals = np.empty_like(sorted_locals)
    previous_locals[0] = 0
    previous_locals[1:] = sorted_locals[:-1]
    is_first = np.empty(sorted_groups.shape, dtype=bool)
    is_first[0] = True
    is_first[1:] = sorted_groups[1:] != sorted_groups[:-1]
    gaps = np.where(is_first, sorted_locals, sorted_locals - previous_locals - 1)
    padding_per_entry = gaps // (max_run + 1)
    sorted_pes = sorted_groups % num_pes
    sorted_columns = sorted_groups // num_pes
    flat_padding = np.bincount(
        sorted_pes * num_cols + sorted_columns,
        weights=padding_per_entry.astype(np.float64),
        minlength=num_pes * num_cols,
    )
    padding_counts = flat_padding.reshape(num_pes, num_cols).astype(np.int64)
    return nnz_counts + padding_counts, padding_counts
