"""Relative-indexed, interleaved compressed sparse column (CSC) storage.

This module implements the storage format of Section III-B of the paper:

* for every column of the (pruned) weight matrix the non-zero values ``v`` and
  their zero-run lengths ``z`` are stored as two equal-length 4-bit streams;
* if more than ``max_run`` (15) zeros precede a non-zero, a *padding zero* is
  inserted into ``v`` with a run of ``max_run`` so the 4-bit field never
  overflows (the paper's example: column ``[0,0,1,2,0×18,3]`` encodes as
  ``v=[1,2,0,3]``, ``z=[2,0,15,2]``);
* a pointer vector ``p`` (one entry per column plus a terminator) locates each
  column's slice in the shared ``v``/``z`` arrays;
* when the matrix is distributed over ``N`` processing elements, PE ``k``
  owns all rows ``i`` with ``i mod N == k`` and stores its slice of every
  column in its own CSC arrays with zero-runs counted in its local row space
  (:class:`InterleavedCSC`).

Every encode/decode path is vectorised: a whole matrix is encoded with one
``np.nonzero`` pass, run-length splitting for gaps longer than ``max_run`` is
done arithmetically on the gap counts (no per-element Python loop), and all
per-PE slices of :class:`InterleavedCSC` are built from a single stable
counting sort of the non-zeros by owning PE instead of ``N`` independent
re-encodes.  The test suite pins these kernels bit-for-bit against retained
per-element reference implementations.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro import kernels
from repro.errors import EncodingError
from repro.utils.validation import require_matrix

__all__ = [
    "encode_column",
    "decode_column",
    "CSCMatrix",
    "InterleavedCSC",
    "interleaved_entry_counts",
    "pe_for_row",
    "local_row_index",
]

#: Largest zero-run representable in a 4-bit relative index.
DEFAULT_MAX_RUN = 15


def pe_for_row(row: int | np.ndarray, num_pes: int) -> int | np.ndarray:
    """The PE that owns ``row`` under the paper's interleaving (``row mod N``)."""
    return row % num_pes


def local_row_index(row: int | np.ndarray, num_pes: int) -> int | np.ndarray:
    """Position of ``row`` within its owning PE's local row space."""
    return row // num_pes


def _expand_streams(
    nonzero_values: np.ndarray, gaps: np.ndarray, max_run: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Turn (non-zero values, preceding-zero gaps) into padded (v, z) streams.

    ``gaps[i]`` is the number of zeros between non-zero ``i`` and the previous
    stored position of its group (column, or (PE, column) slice); the inputs
    must already be in storage order.  A gap of ``g`` zeros needs
    ``g // (max_run + 1)`` padding-zero entries, each consuming ``max_run + 1``
    positions, followed by the real value with the residual run — the same
    arithmetic the per-element encoder performs one `while` iteration at a
    time.  Returns ``(values, runs, ends)`` where ``ends[i]`` is the position
    of non-zero ``i`` in the expanded streams (so ``ends[i] + 1`` is the
    cumulative expanded entry count through non-zero ``i``, from which the
    callers derive their column/group pointers without re-counting).
    """
    span = max_run + 1
    padding_counts = gaps // span
    residual_runs = gaps - padding_counts * span
    ends = (np.cumsum(padding_counts + 1) - 1).astype(np.intp, copy=False)
    total = int(ends[-1]) + 1 if ends.size else 0
    values = np.zeros(total, dtype=np.float64)
    runs = np.full(total, max_run, dtype=np.int64)
    values[ends] = nonzero_values
    runs[ends] = residual_runs
    return values, runs, ends


def _stable_order_by_pe(pes: np.ndarray, num_pes: int) -> np.ndarray:
    """Stable counting (radix) sort order of the entries by owning PE.

    Both interleaved encode paths rest on the same invariant: the input is in
    column-major order with rows ascending, so a *stable* sort on the PE id
    alone leaves every PE's entries grouped by (column, local row) — exactly
    each slice's storage order.  PE ids are downcast to uint16 when possible
    because NumPy only uses the O(n) radix sort for small integer dtypes.
    """
    if num_pes <= 2**16:
        return np.argsort(pes.astype(np.uint16), kind="stable")
    return np.argsort(pes, kind="stable")


def _shifted(values: np.ndarray) -> np.ndarray:
    """``values`` shifted right by one slot (slot 0 is arbitrary/masked)."""
    out = np.empty_like(values)
    if out.shape[0]:
        out[0] = 0
        out[1:] = values[:-1]
    return out


def _column_gaps(group_ids: np.ndarray, positions: np.ndarray) -> np.ndarray:
    """Zeros preceding each stored non-zero within its group.

    ``group_ids`` must be non-decreasing and ``positions`` ascending within
    each group; the gap of a group's first entry is its position (zeros before
    it), later entries count the zeros since the previous entry.
    """
    gaps = np.empty_like(positions)
    if positions.size == 0:
        return gaps
    gaps[0] = positions[0]
    same_group = group_ids[1:] == group_ids[:-1]
    gaps[1:] = np.where(
        same_group, positions[1:] - positions[:-1] - 1, positions[1:]
    )
    return gaps


def encode_column(
    column: np.ndarray, max_run: int = DEFAULT_MAX_RUN
) -> tuple[np.ndarray, np.ndarray]:
    """Encode one column into (values, runs) with padding zeros.

    Returns ``(v, z)``: ``v`` holds the non-zero values (plus padding zeros)
    and ``z`` holds the number of zeros preceding each entry.  Trailing zeros
    after the last non-zero are not stored.
    """
    if max_run < 1:
        raise EncodingError(f"max_run must be >= 1, got {max_run}")
    column = np.asarray(column, dtype=np.float64)
    if column.ndim != 1:
        raise EncodingError(f"column must be 1-D, got shape {column.shape}")
    nonzero_rows = np.flatnonzero(column)
    if nonzero_rows.size == 0:
        return np.empty(0, dtype=np.float64), np.empty(0, dtype=np.int64)
    gaps = np.empty_like(nonzero_rows)
    gaps[0] = nonzero_rows[0]
    gaps[1:] = np.diff(nonzero_rows) - 1
    values, runs, _ = _expand_streams(column[nonzero_rows], gaps, max_run)
    return values, runs


def decode_column(
    values: np.ndarray, runs: np.ndarray, length: int
) -> np.ndarray:
    """Inverse of :func:`encode_column`: rebuild the dense column of ``length``."""
    values = np.asarray(values, dtype=np.float64)
    runs = np.asarray(runs, dtype=np.int64)
    if values.shape != runs.shape:
        raise EncodingError(
            f"values and runs must have equal length, got {values.shape} and {runs.shape}"
        )
    column = np.zeros(length, dtype=np.float64)
    if values.size == 0:
        return column
    positions = _encoded_positions(runs)
    if positions[-1] >= length:
        overrun = positions[np.searchsorted(positions, length)]
        raise EncodingError(
            f"encoded column overruns its dense length {length} (position {overrun})"
        )
    column[positions] = values
    return column


def _encoded_positions(runs: np.ndarray) -> np.ndarray:
    """Dense row positions implied by a run-length stream."""
    runs = np.asarray(runs, dtype=np.int64)
    return np.cumsum(runs + 1) - 1


def _sparse_from_dense(dense: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(columns, rows, values) of the non-zeros, column-major with rows ascending.

    The hot path of every encode: one ``flatnonzero`` scan over the matrix in
    its native C order lists the non-zero positions, and a single stable
    counting (radix) sort on the column id reorders them column-major — the
    row order within each column is already ascending, so stability preserves
    it.  This skips the dense transposed-mask copy an explicit column-major
    scan would need.  Index arithmetic runs in int32 when the matrix is small
    enough, which roughly halves the divmod cost on the paper-scale layers.
    """
    _, num_cols = dense.shape
    dense_flat = dense.reshape(-1)
    flat = np.flatnonzero(dense_flat)
    if dense.size < 2**31:
        flat = flat.astype(np.int32, copy=False)
        rows, columns = np.divmod(flat, np.int32(num_cols))
    else:
        rows, columns = np.divmod(flat, num_cols)
    if num_cols <= 2**16:
        order = np.argsort(columns.astype(np.uint16), kind="stable")
    else:
        order = np.argsort(columns, kind="stable")
    columns = columns[order]
    rows = rows[order]
    values = dense_flat[flat[order].astype(np.intp)]
    return columns, rows, values


@dataclass
class CSCMatrix:
    """A relative-indexed CSC matrix (single storage domain, e.g. one PE).

    Attributes:
        values: concatenated per-column value stream (padding zeros included).
        runs: concatenated per-column zero-run stream, same length as
            ``values``; every entry is in ``[0, max_run]``.
        col_ptr: length ``num_cols + 1`` offsets into ``values``/``runs``.
        num_rows: dense row count.
        num_cols: dense column count.
        max_run: largest representable zero run (15 for 4-bit indices).
    """

    values: np.ndarray
    runs: np.ndarray
    col_ptr: np.ndarray
    num_rows: int
    num_cols: int
    max_run: int = DEFAULT_MAX_RUN

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=np.float64)
        self.runs = np.asarray(self.runs, dtype=np.int64)
        self.col_ptr = np.asarray(self.col_ptr, dtype=np.int64)
        if self.values.shape != self.runs.shape:
            raise EncodingError("values and runs must have the same length")
        if self.col_ptr.shape[0] != self.num_cols + 1:
            raise EncodingError(
                f"col_ptr must have num_cols + 1 = {self.num_cols + 1} entries, "
                f"got {self.col_ptr.shape[0]}"
            )
        if self.col_ptr[0] != 0 or self.col_ptr[-1] != self.values.shape[0]:
            raise EncodingError("col_ptr must start at 0 and end at the entry count")
        if np.any(np.diff(self.col_ptr) < 0):
            raise EncodingError("col_ptr must be non-decreasing")
        if self.runs.size and (self.runs.min() < 0 or self.runs.max() > self.max_run):
            raise EncodingError(f"runs must be within [0, {self.max_run}]")

    # -- construction ---------------------------------------------------------

    @classmethod
    def _from_trusted_streams(
        cls,
        values: np.ndarray,
        runs: np.ndarray,
        col_ptr: np.ndarray,
        num_rows: int,
        num_cols: int,
        max_run: int,
        num_padding_zeros: int | None = None,
    ) -> "CSCMatrix":
        """Assemble a matrix from streams that are valid by construction.

        Skips ``__post_init__`` revalidation (the vectorised encoders produce
        the invariants directly, and the parity tests pin them); optionally
        pre-seeds the ``num_padding_zeros`` cache, which the encoders know
        for free as ``expanded entries - true non-zeros``.
        """
        matrix = object.__new__(cls)
        matrix.values = values
        matrix.runs = runs
        matrix.col_ptr = col_ptr
        matrix.num_rows = int(num_rows)
        matrix.num_cols = int(num_cols)
        matrix.max_run = int(max_run)
        if num_padding_zeros is not None:
            matrix.__dict__["num_padding_zeros"] = int(num_padding_zeros)
        return matrix

    @classmethod
    def from_dense(cls, dense: np.ndarray, max_run: int = DEFAULT_MAX_RUN) -> "CSCMatrix":
        """Encode a dense matrix with one vectorised pass over its non-zeros."""
        dense = np.asarray(require_matrix("dense", dense), dtype=np.float64)
        if max_run < 1:
            raise EncodingError(f"max_run must be >= 1, got {max_run}")
        num_rows, num_cols = dense.shape
        columns, rows, nonzero_values = _sparse_from_dense(dense)
        if columns.size == 0:
            return cls(
                values=np.empty(0, dtype=np.float64),
                runs=np.empty(0, dtype=np.int64),
                col_ptr=np.zeros(num_cols + 1, dtype=np.int64),
                num_rows=num_rows,
                num_cols=num_cols,
                max_run=max_run,
            )
        gaps = _column_gaps(columns, rows)
        values, runs, ends = _expand_streams(nonzero_values, gaps, max_run)
        # The expanded entry count through each column is the stream position
        # of the column's last non-zero; empty columns repeat the running sum.
        nnz_cum = np.cumsum(np.bincount(columns, minlength=num_cols))
        col_ptr = np.zeros(num_cols + 1, dtype=np.int64)
        col_ptr[1:] = np.where(nnz_cum > 0, ends[np.maximum(nnz_cum - 1, 0)] + 1, 0)
        return cls._from_trusted_streams(
            values,
            runs,
            col_ptr,
            num_rows,
            num_cols,
            max_run,
            num_padding_zeros=values.shape[0] - columns.shape[0],
        )

    # -- queries --------------------------------------------------------------

    @property
    def num_entries(self) -> int:
        """Number of stored entries, padding zeros included."""
        return int(self.values.shape[0])

    @cached_property
    def num_padding_zeros(self) -> int:
        """Number of stored entries that are padding zeros (computed once)."""
        return int(np.count_nonzero(self.values == 0.0))

    @property
    def num_true_nonzeros(self) -> int:
        """Number of stored entries carrying an actual non-zero weight."""
        return self.num_entries - self.num_padding_zeros

    @cached_property
    def padding_fraction(self) -> float:
        """Fraction of stored entries that are padding (wasted work)."""
        if self.num_entries == 0:
            return 0.0
        return self.num_padding_zeros / self.num_entries

    def column_entries(self, column: int) -> tuple[np.ndarray, np.ndarray]:
        """The (values, runs) slice for ``column``."""
        if not 0 <= column < self.num_cols:
            raise EncodingError(f"column {column} out of range [0, {self.num_cols})")
        start, end = self.col_ptr[column], self.col_ptr[column + 1]
        return self.values[start:end], self.runs[start:end]

    def column_entry_counts(self) -> np.ndarray:
        """Entries stored per column (padding included)."""
        return np.diff(self.col_ptr)

    def column_row_indices(self, column: int) -> np.ndarray:
        """Dense row index of every stored entry in ``column``."""
        _, runs = self.column_entries(column)
        return _encoded_positions(runs)

    def to_dense(self) -> np.ndarray:
        """Decode back to a dense matrix with one vectorised scatter."""
        dense = np.zeros((self.num_rows, self.num_cols), dtype=np.float64)
        if self.values.size == 0:
            return dense
        counts = np.diff(self.col_ptr)
        steps = self.runs + 1
        running = np.cumsum(steps)
        # Offset of the entry stream before each column's first entry, so the
        # global cumulative sum restarts at every column boundary.
        column_base = np.concatenate([[0], running])[self.col_ptr[:-1]]
        positions = running - 1 - np.repeat(column_base, counts)
        if positions.size and positions.max() >= self.num_rows:
            overrun = positions[np.argmax(positions >= self.num_rows)]
            raise EncodingError(
                f"encoded column overruns its dense length {self.num_rows} "
                f"(position {overrun})"
            )
        entry_columns = np.repeat(np.arange(self.num_cols, dtype=np.int64), counts)
        dense[positions, entry_columns] = self.values
        return dense

    def storage_bits(self, value_bits: int = 4, index_bits: int = 4, pointer_bits: int = 16) -> int:
        """Total storage in bits: entry streams plus the column pointer array."""
        return self.num_entries * (value_bits + index_bits) + self.col_ptr.shape[0] * pointer_bits


class InterleavedCSC:
    """A weight matrix distributed over ``N`` PEs in interleaved CSC form.

    PE ``k`` owns rows ``k, k + N, k + 2N, ...`` and stores its slice of every
    column as a :class:`CSCMatrix` whose zero runs are counted in the PE's
    local row space, exactly as Figure 3 of the paper illustrates.
    """

    def __init__(self, per_pe: list[CSCMatrix], num_rows: int, num_cols: int, num_pes: int) -> None:
        if len(per_pe) != num_pes:
            raise EncodingError(f"expected {num_pes} per-PE matrices, got {len(per_pe)}")
        for pe, matrix in enumerate(per_pe):
            expected_rows = _rows_owned_by(pe, num_rows, num_pes)
            if matrix.num_rows != expected_rows:
                raise EncodingError(
                    f"PE {pe} slice has {matrix.num_rows} rows, expected {expected_rows}"
                )
            if matrix.num_cols != num_cols:
                raise EncodingError(
                    f"PE {pe} slice has {matrix.num_cols} columns, expected {num_cols}"
                )
        self.per_pe = list(per_pe)
        self.num_rows = int(num_rows)
        self.num_cols = int(num_cols)
        self.num_pes = int(num_pes)

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_dense(
        cls, dense: np.ndarray, num_pes: int, max_run: int = DEFAULT_MAX_RUN
    ) -> "InterleavedCSC":
        """Distribute a dense matrix over ``num_pes`` PEs and encode each slice.

        All per-PE streams are built from one pass over the dense matrix: the
        non-zeros are stably sorted by owning PE (a counting sort on
        ``row % N``), which leaves them grouped by (PE, column) with local
        rows ascending — exactly the storage order of every PE slice — and the
        padded streams are expanded for all PEs at once, then split at the
        per-PE boundaries.
        """
        dense = np.asarray(require_matrix("dense", dense), dtype=np.float64)
        if num_pes < 1:
            raise EncodingError(f"num_pes must be >= 1, got {num_pes}")
        if max_run < 1:
            raise EncodingError(f"max_run must be >= 1, got {max_run}")
        num_rows, num_cols = dense.shape
        columns, rows, nonzero_values = _sparse_from_dense(dense)

        if columns.size and kernels.use_native():
            # Kernel tier: two compiled passes over the column-major
            # non-zeros (count, then scatter into pe-grouped positions)
            # replace the counting sort + arithmetic run splitting.  The
            # emitted streams are bit-identical (parity-suite pinned).
            columns64 = columns.astype(np.int64, copy=False)
            rows64 = rows.astype(np.int64, copy=False)
            native = kernels.get()
            counts_flat, nnz_flat = native.interleaved_group_counts(
                columns64, rows64, num_pes, num_cols, max_run
            )
            cursors = np.zeros(counts_flat.shape[0], dtype=np.int64)
            np.cumsum(counts_flat[:-1], out=cursors[1:])
            total_entries = int(counts_flat.sum())
            values = np.empty(total_entries, dtype=np.float64)
            runs = np.empty(total_entries, dtype=np.int64)
            native.interleaved_fill_streams(
                columns64,
                rows64,
                nonzero_values,
                cursors,
                num_pes,
                num_cols,
                max_run,
                values,
                runs,
            )
            per_group = counts_flat.reshape(num_pes, num_cols)
            nnz_per_pe = nnz_flat.reshape(num_pes, num_cols).sum(axis=1)
        elif columns.size:
            local_rows, pes = np.divmod(rows, rows.dtype.type(num_pes))
            order = _stable_order_by_pe(pes, num_pes)
            sorted_pes = pes[order]
            sorted_columns = columns[order]
            sorted_locals = local_rows[order]
            group_ids = sorted_pes.astype(np.int64) * num_cols + sorted_columns
            gaps = _column_gaps(group_ids, sorted_locals)
            values, runs, ends = _expand_streams(nonzero_values[order], gaps, max_run)
            nnz_per_group = np.bincount(group_ids, minlength=num_pes * num_cols)
            group_cum = np.cumsum(nnz_per_group)
            expanded_cum = np.where(
                group_cum > 0, ends[np.maximum(group_cum - 1, 0)] + 1, 0
            )
            entries_per_group = np.diff(expanded_cum, prepend=0)
            per_group = entries_per_group.reshape(num_pes, num_cols)
            nnz_per_pe = nnz_per_group.reshape(num_pes, num_cols).sum(axis=1)
        else:
            values = np.empty(0, dtype=np.float64)
            runs = np.empty(0, dtype=np.int64)
            per_group = np.zeros((num_pes, num_cols), dtype=np.int64)
            nnz_per_pe = np.zeros(num_pes, dtype=np.int64)

        pe_boundaries = np.zeros(num_pes + 1, dtype=np.int64)
        np.cumsum(per_group.sum(axis=1), out=pe_boundaries[1:])
        slices = []
        for pe in range(num_pes):
            col_ptr = np.zeros(num_cols + 1, dtype=np.int64)
            np.cumsum(per_group[pe], out=col_ptr[1:])
            start, end = pe_boundaries[pe], pe_boundaries[pe + 1]
            slices.append(
                CSCMatrix._from_trusted_streams(
                    values[start:end],
                    runs[start:end],
                    col_ptr,
                    _rows_owned_by(pe, num_rows, num_pes),
                    num_cols,
                    max_run,
                    num_padding_zeros=int(end - start - nnz_per_pe[pe]),
                )
            )
        return cls(per_pe=slices, num_rows=num_rows, num_cols=num_cols, num_pes=num_pes)

    # -- queries --------------------------------------------------------------

    @property
    def num_entries(self) -> int:
        """Total stored entries across all PEs (padding included)."""
        return sum(matrix.num_entries for matrix in self.per_pe)

    @cached_property
    def num_padding_zeros(self) -> int:
        """Total padding-zero entries across all PEs (computed once)."""
        return sum(matrix.num_padding_zeros for matrix in self.per_pe)

    @property
    def num_true_nonzeros(self) -> int:
        """Total genuine non-zero weights stored."""
        return self.num_entries - self.num_padding_zeros

    @cached_property
    def padding_fraction(self) -> float:
        """Fraction of stored entries that are padding zeros."""
        entries = self.num_entries
        return self.num_padding_zeros / entries if entries else 0.0

    @property
    def real_work_fraction(self) -> float:
        """Real work / total work, the quantity plotted in Figure 12."""
        return 1.0 - self.padding_fraction

    def entries_per_pe(self) -> np.ndarray:
        """Entries stored by each PE (load distribution of the whole matrix)."""
        return np.asarray([matrix.num_entries for matrix in self.per_pe], dtype=np.int64)

    @cached_property
    def _entries_per_pe_column(self) -> np.ndarray:
        counts = np.zeros((self.num_pes, self.num_cols), dtype=np.int64)
        for pe, matrix in enumerate(self.per_pe):
            counts[pe, :] = matrix.column_entry_counts()
        counts.flags.writeable = False
        return counts

    def entries_per_pe_column(self) -> np.ndarray:
        """Entries per (PE, column): the work each broadcast creates per PE.

        Shape ``(num_pes, num_cols)``.  This is the key input to the
        cycle-level simulator: when activation ``a_j`` is broadcast, PE ``k``
        must process ``result[k, j]`` entries.  The matrix is computed once
        and cached (returned read-only) — layer preparation and repeated
        sweeps over the same storage reuse it for free.
        """
        return self._entries_per_pe_column

    @cached_property
    def _padding_per_pe_column(self) -> np.ndarray:
        counts = self._entries_per_pe_column
        padding = np.zeros_like(counts)
        values = (
            np.concatenate([matrix.values for matrix in self.per_pe])
            if self.per_pe
            else np.empty(0)
        )
        is_padding = values == 0.0
        if is_padding.any():
            if kernels.use_native():
                # Kernel tier: tally padding zeros per (PE, column) directly
                # from the concatenated streams, PEs in parallel, instead of
                # materialising the O(entries) group-id array.
                col_ptrs = np.stack([matrix.col_ptr for matrix in self.per_pe])
                entries = np.asarray(
                    [matrix.num_entries for matrix in self.per_pe], dtype=np.int64
                )
                bases = np.zeros(self.num_pes, dtype=np.int64)
                np.cumsum(entries[:-1], out=bases[1:])
                padding = np.zeros_like(counts)
                kernels.get().padding_tallies(values, col_ptrs, bases, padding)
            else:
                group_ids = np.repeat(
                    np.arange(self.num_pes * self.num_cols, dtype=np.int64),
                    counts.reshape(-1),
                )
                padding = np.bincount(
                    group_ids[is_padding], minlength=self.num_pes * self.num_cols
                ).reshape(self.num_pes, self.num_cols)
        padding.flags.writeable = False
        return padding

    def padding_per_pe_column(self) -> np.ndarray:
        """Padding-zero entries per (PE, column), computed once and cached.

        Same shape and caching behaviour as :meth:`entries_per_pe_column`;
        one bincount over flat (PE, column) ids covering every stored entry.
        """
        return self._padding_per_pe_column

    def invalidate_caches(self) -> None:
        """Drop every cached derived quantity (forces recomputation).

        Only needed after mutating ``per_pe`` in place (which library code
        never does) or to time the true extraction cost in benchmarks.
        """
        for name in (
            "num_padding_zeros",
            "padding_fraction",
            "_entries_per_pe_column",
            "_padding_per_pe_column",
        ):
            self.__dict__.pop(name, None)

    def global_row_index(self, pe: int, local_row: int) -> int:
        """Map a PE-local row position back to the dense row index."""
        return local_row * self.num_pes + pe

    def to_dense(self) -> np.ndarray:
        """Decode the distributed representation back into one dense matrix."""
        dense = np.zeros((self.num_rows, self.num_cols), dtype=np.float64)
        for pe, matrix in enumerate(self.per_pe):
            dense[pe::self.num_pes, :] = matrix.to_dense()
        return dense

    def storage_bits(self, value_bits: int = 4, index_bits: int = 4, pointer_bits: int = 16) -> int:
        """Total storage across all PEs."""
        return sum(
            matrix.storage_bits(value_bits, index_bits, pointer_bits) for matrix in self.per_pe
        )


def _rows_owned_by(pe: int, num_rows: int, num_pes: int) -> int:
    """Number of dense rows assigned to ``pe`` under interleaving."""
    return (num_rows - pe + num_pes - 1) // num_pes


def interleaved_entry_counts(
    row_indices: np.ndarray,
    col_ptr: np.ndarray,
    num_rows: int,
    num_pes: int,
    max_run: int = DEFAULT_MAX_RUN,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised per-(PE, column) entry counts for a sparsity pattern.

    This computes, without materialising the encoded streams, how many CSC
    entries (true non-zeros plus padding zeros) each PE stores for each
    column.  It is what the cycle-level simulator uses for the full-size
    Table III layers, where building explicit per-PE CSC arrays in Python
    would be needlessly slow.

    Args:
        row_indices: row index of every non-zero, grouped by column (CSC
            order; rows within a column must be sorted ascending).
        col_ptr: length ``num_cols + 1`` offsets into ``row_indices``.
        num_rows: dense row count.
        num_pes: number of processing elements.
        max_run: largest zero run representable without padding.

    Returns:
        ``(total_counts, padding_counts)``, both of shape
        ``(num_pes, num_cols)``.
    """
    row_indices = np.asarray(row_indices, dtype=np.int64)
    col_ptr = np.asarray(col_ptr, dtype=np.int64)
    num_cols = col_ptr.shape[0] - 1
    if num_cols < 0:
        raise EncodingError("col_ptr must have at least one entry")
    if row_indices.size and (row_indices.min() < 0 or row_indices.max() >= num_rows):
        raise EncodingError("row indices out of range")
    nnz_counts = np.zeros((num_pes, num_cols), dtype=np.int64)
    padding_counts = np.zeros((num_pes, num_cols), dtype=np.int64)
    if row_indices.size == 0:
        return nnz_counts, padding_counts

    if kernels.use_native():
        # Kernel tier: one compiled pass over the pattern computes total and
        # non-zero counts per (PE, column); padding is their difference.
        columns = np.repeat(np.arange(num_cols, dtype=np.int64), np.diff(col_ptr))
        counts_flat, nnz_flat = kernels.get().interleaved_group_counts(
            columns, row_indices, num_pes, num_cols, max_run
        )
        padding_counts = (counts_flat - nnz_flat).reshape(num_pes, num_cols)
        return counts_flat.reshape(num_pes, num_cols), padding_counts

    # 32-bit index arithmetic (safe: rows/cols/groups all < 2**31 whenever
    # the dense matrix has fewer than 2**31 cells) roughly halves the cost of
    # the divmods and gathers on the paper-scale 13M-non-zero layers, and a
    # power-of-two PE count turns the divmod into shift/mask.
    if num_rows * num_cols < 2**31 and num_pes * num_cols < 2**31:
        row_indices = row_indices.astype(np.int32, copy=False)
        columns = np.repeat(np.arange(num_cols, dtype=np.int32), np.diff(col_ptr))
        if num_pes & (num_pes - 1) == 0:
            locals_ = row_indices >> np.int32(num_pes.bit_length() - 1)
            pes = row_indices & np.int32(num_pes - 1)
        else:
            locals_, pes = np.divmod(row_indices, np.int32(num_pes))
        flat_groups = pes * np.int32(num_cols) + columns
    else:
        columns = np.repeat(np.arange(num_cols, dtype=np.int64), np.diff(col_ptr))
        locals_, pes = np.divmod(row_indices, num_pes)
        flat_groups = pes * num_cols + columns

    # Non-zero counts per (pe, column).
    nnz_flat = np.bincount(flat_groups, minlength=num_pes * num_cols)
    nnz_counts = nnz_flat.reshape(num_pes, num_cols)

    # Padding zeros: gaps between consecutive local positions of each
    # (PE, column) group.  The input is column-major with rows ascending, so
    # one stable counting (radix) sort on the PE id leaves the entries
    # grouped by (PE, column) with local rows still ascending — much cheaper
    # than a two-key lexsort of the full index set.
    order = _stable_order_by_pe(pes, num_pes)
    sorted_locals = locals_[order]
    # Group starts in the sorted entry order come straight from the group
    # sizes (the sorted group ids are exactly 0..P*C-1 in ascending order),
    # so the sorted group-id array itself is never materialised.
    first = np.zeros(sorted_locals.shape[0], dtype=bool)
    group_starts = np.cumsum(nnz_flat[:-1])
    first[0] = True
    first[group_starts[group_starts < first.shape[0]]] = True
    gaps = np.where(first, sorted_locals, np.subtract(sorted_locals, _shifted(sorted_locals)) - 1)
    padding_per_entry = gaps // (max_run + 1)
    padded_positions = np.flatnonzero(padding_per_entry > 0)
    if padded_positions.size:
        flat_padding = np.bincount(
            flat_groups[order[padded_positions]],
            weights=padding_per_entry[padded_positions].astype(np.float64),
            minlength=num_pes * num_cols,
        )
        padding_counts = flat_padding.reshape(num_pes, num_cols).astype(np.int64)
    return nnz_counts + padding_counts, padding_counts
