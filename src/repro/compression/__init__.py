"""Deep Compression substrate: pruning, weight sharing, CSC encoding, Huffman.

This package implements the compression pipeline described in the paper's
Section III (and in the companion 'Deep Compression' paper) that produces the
model representation EIE operates on:

1. magnitude pruning makes the weight matrix sparse (4-25% density);
2. weight sharing replaces each surviving weight with a 4-bit index into a
   16-entry codebook built by k-means;
3. the sparse, indexed matrix is stored in a relative-indexed compressed
   sparse column (CSC) format with 4-bit zero-run lengths, interleaved across
   processing elements row-by-row;
4. Huffman coding (used for off-line storage accounting only) squeezes the
   index streams further.
"""

from repro.compression.csc import (
    CSCMatrix,
    InterleavedCSC,
    encode_column,
    decode_column,
    interleaved_entry_counts,
)
from repro.compression.huffman import HuffmanCode
from repro.compression.pipeline import CompressedLayer, CompressionConfig, DeepCompressor
from repro.compression.pruning import PruningResult, prune_by_threshold, prune_to_density
from repro.compression.quantization import WeightCodebook, kmeans_codebook

__all__ = [
    "CSCMatrix",
    "CompressedLayer",
    "CompressionConfig",
    "DeepCompressor",
    "HuffmanCode",
    "InterleavedCSC",
    "PruningResult",
    "WeightCodebook",
    "decode_column",
    "encode_column",
    "interleaved_entry_counts",
    "kmeans_codebook",
    "prune_by_threshold",
    "prune_to_density",
]
