"""Table V: cross-platform comparison on the AlexNet FC7 layer.

For CPU, GPU and the mobile GPU the throughput comes from the roofline
models; for DaDianNao from the bandwidth-bound model; A-Eye and TrueNorth are
carried as published figures (the paper likewise quotes their publications).
The two EIE rows are produced by the cycle-level simulator plus the
area/power models, with the 256-PE configuration projected to 28 nm using the
technology-scaling rules.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.dadiannao import DaDianNaoModel
from repro.baselines.roofline import RooflinePlatform
from repro.baselines.specs import CPU_CORE_I7_5930K, GPU_TITAN_X, MOBILE_GPU_TEGRA_K1
from repro.core.config import EIEConfig
from repro.hardware.area import chip_area_mm2, chip_power_w
from repro.hardware.technology import NODE_28NM, NODE_45NM, project
from repro.workloads.benchmarks import get_benchmark
from repro.workloads.generator import WorkloadBuilder

__all__ = [
    "PlatformComparison",
    "OTHER_ACCELERATORS",
    "EIE_PLATFORM_45NM_64PE",
    "EIE_PLATFORM_28NM_256PE",
    "build_table5",
]


@dataclass
class PlatformComparison:
    """One row of the Table V comparison.

    Attributes mirror the table: throughput (frames/s of AlexNet FC7 M x V),
    area, power, and the two derived efficiency metrics.
    """

    name: str
    platform_type: str
    year: int
    technology_nm: int
    clock_mhz: float | None
    memory_type: str
    quantization: str
    max_model_params: float
    area_mm2: float | None
    power_w: float
    throughput_fps: float

    @property
    def area_efficiency(self) -> float | None:
        """Frames per second per mm^2 (``None`` when area is unknown)."""
        if self.area_mm2 is None or self.area_mm2 <= 0:
            return None
        return self.throughput_fps / self.area_mm2

    @property
    def energy_efficiency(self) -> float:
        """Frames per joule."""
        if self.power_w <= 0:
            return 0.0
        return self.throughput_fps / self.power_w


@dataclass(frozen=True)
class _PublishedAccelerator:
    """An accelerator carried with its published Table V numbers."""

    name: str
    platform_type: str
    year: int
    technology_nm: int
    clock_mhz: float | None
    memory_type: str
    quantization: str
    max_model_params: float
    area_mm2: float | None
    power_w: float
    throughput_fps: float


#: A-Eye (FPGA) and TrueNorth (ASIC) rows, as published.
OTHER_ACCELERATORS: tuple[_PublishedAccelerator, ...] = (
    _PublishedAccelerator(
        name="A-Eye",
        platform_type="FPGA",
        year=2015,
        technology_nm=28,
        clock_mhz=150.0,
        memory_type="DRAM",
        quantization="16-bit fixed",
        max_model_params=500e6,
        area_mm2=None,
        power_w=9.63,
        throughput_fps=33.0,
    ),
    _PublishedAccelerator(
        name="TrueNorth",
        platform_type="ASIC",
        year=2014,
        technology_nm=28,
        clock_mhz=None,
        memory_type="SRAM",
        quantization="1-bit fixed",
        max_model_params=256e6,
        area_mm2=430.0,
        power_w=0.18,
        throughput_fps=1989.0,
    ),
)

#: The two EIE configurations compared in Table V.
EIE_PLATFORM_45NM_64PE = EIEConfig(num_pes=64, clock_mhz=800.0)
EIE_PLATFORM_28NM_256PE = EIEConfig(num_pes=256, clock_mhz=1200.0)


def _eie_row(
    config: EIEConfig,
    builder: WorkloadBuilder,
    benchmark: str,
    technology_nm: int,
    name: str,
) -> PlatformComparison:
    """Build one EIE row of Table V from the cycle model and area models."""
    spec = get_benchmark(benchmark)
    workload = builder.build(spec, config.num_pes)
    stats = workload.simulate(config)
    area = chip_area_mm2(config.num_pes)
    power = chip_power_w(config.num_pes)
    if technology_nm == 28:
        projected = project(area, power, config.clock_mhz, NODE_45NM, NODE_28NM)
        area = projected["area_mm2"]
        power = projected["power_w"]
    capacity = config.total_weight_capacity
    return PlatformComparison(
        name=name,
        platform_type="ASIC",
        year=2016,
        technology_nm=technology_nm,
        clock_mhz=config.clock_mhz,
        memory_type="SRAM",
        quantization="4-bit fixed",
        max_model_params=float(capacity),
        area_mm2=area,
        power_w=power,
        throughput_fps=1.0 / stats.time_s if stats.time_s > 0 else 0.0,
    )


def build_table5(
    benchmark: str = "Alex-7",
    builder: WorkloadBuilder | None = None,
) -> list[PlatformComparison]:
    """Regenerate Table V: every platform's throughput/area/energy efficiency."""
    builder = builder or WorkloadBuilder()
    spec = get_benchmark(benchmark)
    rows: list[PlatformComparison] = []
    for platform_spec in (CPU_CORE_I7_5930K, GPU_TITAN_X, MOBILE_GPU_TEGRA_K1):
        model = RooflinePlatform(platform_spec)
        time_s = model.dense_time_s(spec, batch=1)
        rows.append(
            PlatformComparison(
                name=platform_spec.name,
                platform_type=platform_spec.platform_type,
                year=platform_spec.year,
                technology_nm=platform_spec.technology_nm,
                clock_mhz=platform_spec.clock_mhz,
                memory_type=platform_spec.memory_type,
                quantization="32-bit float",
                max_model_params=platform_spec.max_model_params,
                area_mm2=platform_spec.area_mm2,
                power_w=platform_spec.power_w,
                throughput_fps=1.0 / time_s,
            )
        )
    for published in OTHER_ACCELERATORS:
        rows.append(
            PlatformComparison(
                name=published.name,
                platform_type=published.platform_type,
                year=published.year,
                technology_nm=published.technology_nm,
                clock_mhz=published.clock_mhz,
                memory_type=published.memory_type,
                quantization=published.quantization,
                max_model_params=published.max_model_params,
                area_mm2=published.area_mm2,
                power_w=published.power_w,
                throughput_fps=published.throughput_fps,
            )
        )
    dadiannao = DaDianNaoModel()
    rows.append(
        PlatformComparison(
            name=dadiannao.name,
            platform_type="ASIC",
            year=2014,
            technology_nm=dadiannao.technology_nm,
            clock_mhz=dadiannao.clock_mhz,
            memory_type="eDRAM",
            quantization="16-bit fixed",
            max_model_params=dadiannao.max_model_params,
            area_mm2=dadiannao.area_mm2,
            power_w=dadiannao.power_w,
            throughput_fps=dadiannao.frames_per_second(spec),
        )
    )
    rows.append(
        _eie_row(EIE_PLATFORM_45NM_64PE, builder, benchmark, technology_nm=45,
                 name="EIE (64PE, 45nm)")
    )
    rows.append(
        _eie_row(EIE_PLATFORM_28NM_256PE, builder, benchmark, technology_nm=28,
                 name="EIE (256PE, 28nm)")
    )
    return rows
