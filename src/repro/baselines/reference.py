"""Published measurements from the paper, used for comparison and validation.

These dictionaries record the numbers the paper reports (Table IV wall-clock
times, Figure 6/7 geometric-mean speedups and energy efficiencies).  They are
*not* used by the models — they are the ground truth the benchmark harness
compares our regenerated numbers against in EXPERIMENTS.md and in the
shape-checking tests.
"""

from __future__ import annotations

__all__ = [
    "PAPER_TABLE_IV_US",
    "PAPER_SPEEDUP_GEOMEAN",
    "PAPER_ENERGY_EFFICIENCY_GEOMEAN",
    "PAPER_EIE_SPEEDUPS",
    "PAPER_TABLE_V",
]

#: Table IV: wall-clock time in microseconds, batch size 1 unless noted.
#: Keys: platform -> (batch, kernel) -> benchmark -> time in us.
PAPER_TABLE_IV_US: dict[str, dict[tuple[int, str], dict[str, float]]] = {
    "CPU": {
        (1, "dense"): {
            "Alex-6": 7516.2, "Alex-7": 6187.1, "Alex-8": 1134.9,
            "VGG-6": 35022.8, "VGG-7": 5372.8, "VGG-8": 774.2,
            "NT-We": 605.0, "NT-Wd": 1361.4, "NT-LSTM": 470.5,
        },
        (1, "sparse"): {
            "Alex-6": 3066.5, "Alex-7": 1282.1, "Alex-8": 890.5,
            "VGG-6": 3774.3, "VGG-7": 545.1, "VGG-8": 777.3,
            "NT-We": 261.2, "NT-Wd": 437.4, "NT-LSTM": 260.0,
        },
        (64, "dense"): {
            "Alex-6": 318.4, "Alex-7": 188.9, "Alex-8": 45.8,
            "VGG-6": 1056.0, "VGG-7": 188.3, "VGG-8": 45.7,
            "NT-We": 28.7, "NT-Wd": 69.0, "NT-LSTM": 28.8,
        },
        (64, "sparse"): {
            "Alex-6": 1417.6, "Alex-7": 682.1, "Alex-8": 407.7,
            "VGG-6": 1780.3, "VGG-7": 274.9, "VGG-8": 363.1,
            "NT-We": 117.7, "NT-Wd": 176.4, "NT-LSTM": 107.4,
        },
    },
    "GPU": {
        (1, "dense"): {
            "Alex-6": 541.5, "Alex-7": 243.0, "Alex-8": 80.5,
            "VGG-6": 1467.8, "VGG-7": 243.0, "VGG-8": 80.5,
            "NT-We": 65.0, "NT-Wd": 90.1, "NT-LSTM": 51.9,
        },
        (1, "sparse"): {
            "Alex-6": 134.8, "Alex-7": 65.8, "Alex-8": 54.6,
            "VGG-6": 167.0, "VGG-7": 39.8, "VGG-8": 48.0,
            "NT-We": 17.7, "NT-Wd": 41.1, "NT-LSTM": 18.5,
        },
        (64, "dense"): {
            "Alex-6": 19.8, "Alex-7": 8.9, "Alex-8": 5.9,
            "VGG-6": 53.6, "VGG-7": 8.9, "VGG-8": 5.9,
            "NT-We": 3.2, "NT-Wd": 2.3, "NT-LSTM": 2.5,
        },
        (64, "sparse"): {
            "Alex-6": 94.6, "Alex-7": 51.5, "Alex-8": 23.2,
            "VGG-6": 121.5, "VGG-7": 24.4, "VGG-8": 22.0,
            "NT-We": 10.9, "NT-Wd": 11.0, "NT-LSTM": 9.0,
        },
    },
    "mGPU": {
        (1, "dense"): {
            "Alex-6": 12437.2, "Alex-7": 5765.0, "Alex-8": 2252.1,
            "VGG-6": 35427.0, "VGG-7": 5544.3, "VGG-8": 2243.1,
            "NT-We": 1316.0, "NT-Wd": 2565.5, "NT-LSTM": 956.9,
        },
        (1, "sparse"): {
            "Alex-6": 2879.3, "Alex-7": 1256.5, "Alex-8": 837.0,
            "VGG-6": 4377.2, "VGG-7": 626.3, "VGG-8": 745.1,
            "NT-We": 240.6, "NT-Wd": 570.6, "NT-LSTM": 315.0,
        },
        (64, "dense"): {
            "Alex-6": 1663.6, "Alex-7": 2056.8, "Alex-8": 298.0,
            "VGG-6": 2001.4, "VGG-7": 2050.7, "VGG-8": 483.9,
            "NT-We": 87.8, "NT-Wd": 956.3, "NT-LSTM": 95.2,
        },
        (64, "sparse"): {
            "Alex-6": 4003.9, "Alex-7": 1372.8, "Alex-8": 576.7,
            "VGG-6": 8024.8, "VGG-7": 660.2, "VGG-8": 544.1,
            "NT-We": 236.3, "NT-Wd": 187.7, "NT-LSTM": 186.5,
        },
    },
    "EIE": {
        (1, "theoretical"): {
            "Alex-6": 28.1, "Alex-7": 11.7, "Alex-8": 8.9,
            "VGG-6": 28.1, "VGG-7": 7.9, "VGG-8": 7.3,
            "NT-We": 5.2, "NT-Wd": 13.0, "NT-LSTM": 6.5,
        },
        (1, "actual"): {
            "Alex-6": 30.3, "Alex-7": 12.2, "Alex-8": 9.9,
            "VGG-6": 34.4, "VGG-7": 8.7, "VGG-8": 8.4,
            "NT-We": 8.0, "NT-Wd": 13.9, "NT-LSTM": 7.5,
        },
    },
}

#: Figure 6: geometric-mean speedup versus CPU dense at batch 1.
PAPER_SPEEDUP_GEOMEAN: dict[str, float] = {
    "CPU dense": 1.0,
    "CPU compressed": 3.0,
    "GPU dense": 15.0,
    "GPU compressed": 48.0,
    "mGPU dense": 0.6,
    "mGPU compressed": 3.0,
    "EIE": 189.0,
}

#: Per-benchmark EIE speedups over CPU dense at batch 1 (Figure 6, last bar group).
PAPER_EIE_SPEEDUPS: dict[str, float] = {
    "Alex-6": 248.0, "Alex-7": 507.0, "Alex-8": 115.0,
    "VGG-6": 1018.0, "VGG-7": 618.0, "VGG-8": 92.0,
    "NT-We": 63.0, "NT-Wd": 98.0, "NT-LSTM": 60.0,
}

#: Figure 7: geometric-mean energy efficiency versus CPU dense at batch 1.
PAPER_ENERGY_EFFICIENCY_GEOMEAN: dict[str, float] = {
    "CPU dense": 1.0,
    "CPU compressed": 6.0,
    "GPU dense": 7.0,
    "GPU compressed": 23.0,
    "mGPU dense": 9.0,
    "mGPU compressed": 36.0,
    "EIE": 24207.0,
}

#: Table V headline numbers (M x V on AlexNet FC7).
PAPER_TABLE_V: dict[str, dict[str, float]] = {
    "Core i7-5930K": {"throughput_fps": 162, "area_mm2": 356, "power_w": 73,
                      "energy_efficiency_fpj": 2.22},
    "GeForce Titan X": {"throughput_fps": 4115, "area_mm2": 601, "power_w": 159,
                        "energy_efficiency_fpj": 25.9},
    "Tegra K1": {"throughput_fps": 173, "power_w": 5.1, "energy_efficiency_fpj": 33.9},
    "A-Eye": {"throughput_fps": 33, "power_w": 9.63, "energy_efficiency_fpj": 3.43},
    "DaDianNao": {"throughput_fps": 147938, "area_mm2": 67.7, "power_w": 15.97,
                  "energy_efficiency_fpj": 9263},
    "TrueNorth": {"throughput_fps": 1989, "area_mm2": 430, "power_w": 0.18,
                  "energy_efficiency_fpj": 10839},
    "EIE (64PE, 45nm)": {"throughput_fps": 81967, "area_mm2": 40.8, "power_w": 0.59,
                         "energy_efficiency_fpj": 138927},
    "EIE (256PE, 28nm)": {"throughput_fps": 426230, "area_mm2": 63.8, "power_w": 2.36,
                          "energy_efficiency_fpj": 180606},
}
