"""Roofline timing/energy model for the CPU, GPU and mobile-GPU baselines.

For a fully-connected layer ``b = W a`` with ``R x C`` weights:

* the dense kernel must fetch every 32-bit weight from DRAM and perform
  ``2 R C`` FLOPs; with batch ``B`` the weight traffic is amortised over the
  batch, so the per-frame time is
  ``max(2RC / F_dense, 4RC / (BW_dense * B))``;
* the sparse (compressed) kernel touches only the ``nnz = R C d_w`` surviving
  weights, but pays 8 bytes per non-zero (value + column index) plus the row
  pointers, and runs at a much lower effective FLOP rate because of the
  irregular accesses — which is why compression alone gives only ~3x on
  CPU/GPU at batch 1 and actually *hurts* at batch 64, exactly the crossover
  visible in Table IV.

Neither baseline kernel can exploit the dynamic activation sparsity or the
4-bit weight sharing; only EIE does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.specs import PlatformSpec
from repro.core.stats import EnergyStats, PerformanceStats
from repro.errors import ConfigurationError
from repro.workloads.benchmarks import LayerSpec

__all__ = ["RooflineSpec", "RooflinePlatform"]

#: Bytes per dense weight (single-precision float).
_DENSE_BYTES_PER_WEIGHT = 4
#: Bytes per stored non-zero in CSR (float32 value + int32 column index).
_SPARSE_BYTES_PER_NNZ = 8
#: Bytes per row pointer in CSR.
_SPARSE_BYTES_PER_ROW = 4


@dataclass(frozen=True)
class RooflineSpec:
    """The four effective-throughput parameters of one platform."""

    dense_gflops: float
    dense_bandwidth_gbs: float
    sparse_gflops: float
    sparse_bandwidth_gbs: float


class RooflinePlatform:
    """Analytic latency/energy model of one off-the-shelf platform."""

    def __init__(self, spec: PlatformSpec) -> None:
        self.spec = spec

    # -- timing -------------------------------------------------------------------

    def dense_time_s(self, layer: LayerSpec, batch: int = 1) -> float:
        """Per-frame time of the dense (uncompressed) kernel."""
        self._check_batch(batch)
        flops = 2.0 * layer.dense_weights
        weight_bytes = float(layer.dense_weights * _DENSE_BYTES_PER_WEIGHT)
        compute_time = flops / (self.spec.dense_gflops * 1e9)
        memory_time = weight_bytes / (self.spec.dense_bandwidth_gbs * 1e9 * batch)
        return max(compute_time, memory_time)

    def sparse_time_s(self, layer: LayerSpec, batch: int = 1) -> float:
        """Per-frame time of the compressed (sparse CSR) kernel."""
        self._check_batch(batch)
        nnz = layer.dense_weights * layer.weight_density
        flops = 2.0 * nnz
        traffic = nnz * _SPARSE_BYTES_PER_NNZ + (layer.rows + 1) * _SPARSE_BYTES_PER_ROW
        compute_time = flops / (self.spec.sparse_gflops * 1e9)
        memory_time = traffic / (self.spec.sparse_bandwidth_gbs * 1e9 * batch)
        return max(compute_time, memory_time)

    def time_s(self, layer: LayerSpec, compressed: bool, batch: int = 1) -> float:
        """Per-frame time for either kernel."""
        if compressed:
            return self.sparse_time_s(layer, batch)
        return self.dense_time_s(layer, batch)

    # -- performance / energy -----------------------------------------------------------

    def performance(self, layer: LayerSpec, compressed: bool, batch: int = 1) -> PerformanceStats:
        """Performance record for one frame of ``layer``."""
        time_s = self.time_s(layer, compressed, batch)
        if compressed:
            macs = int(round(layer.dense_weights * layer.weight_density))
        else:
            macs = layer.dense_weights
        return PerformanceStats(
            cycles=0,
            time_s=time_s,
            macs_performed=macs,
            dense_macs=layer.dense_weights,
            clock_hz=self.spec.clock_mhz * 1e6,
        )

    def energy(self, layer: LayerSpec, compressed: bool, batch: int = 1) -> EnergyStats:
        """Energy of one frame: platform power times per-frame time."""
        time_s = self.time_s(layer, compressed, batch)
        return EnergyStats(
            energy_j=time_s * self.spec.power_w,
            power_w=self.spec.power_w,
            breakdown={"platform_power": time_s * self.spec.power_w},
        )

    @staticmethod
    def _check_batch(batch: int) -> None:
        if batch < 1:
            raise ConfigurationError(f"batch must be >= 1, got {batch}")
