"""DaDianNao comparison model.

DaDianNao stores uncompressed 16-bit weights in 16 tiles of 4 eDRAM banks
each, giving a peak on-chip memory bandwidth of
``16 x 4 x (1024 bit / 8) x 606 MHz = 4964 GB/s``.  Because M x V is entirely
memory bound and DaDianNao cannot exploit weight or activation sparsity (nor
weight sharing), its M x V throughput is the peak bandwidth divided by the
dense 16-bit weight traffic per frame — exactly how the paper estimates its
Table V entry.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.stats import EnergyStats, PerformanceStats
from repro.workloads.benchmarks import LayerSpec

__all__ = ["DaDianNaoModel"]

#: Peak aggregate eDRAM bandwidth (GB/s) quoted in the paper.
_PEAK_BANDWIDTH_GBS = 16 * 4 * (1024 / 8) * 606e6 / 1e9
#: Bytes per dense weight (16-bit fixed point).
_BYTES_PER_WEIGHT = 2


@dataclass(frozen=True)
class DaDianNaoModel:
    """Bandwidth-bound throughput model of DaDianNao.

    Attributes carry the Table V headline numbers; the timing method assumes
    the dense 16-bit model must be streamed from eDRAM once per frame.
    """

    name: str = "DaDianNao"
    technology_nm: int = 28
    clock_mhz: float = 606.0
    power_w: float = 15.97
    memory_power_w: float = 6.12
    area_mm2: float = 67.7
    max_model_params: float = 18e6
    bandwidth_gbs: float = _PEAK_BANDWIDTH_GBS

    def dense_time_s(self, layer: LayerSpec) -> float:
        """Per-frame time: dense 16-bit weight traffic over peak bandwidth."""
        traffic_bytes = layer.dense_weights * _BYTES_PER_WEIGHT
        return traffic_bytes / (self.bandwidth_gbs * 1e9)

    def performance(self, layer: LayerSpec) -> PerformanceStats:
        """Performance record for one frame of ``layer``."""
        time_s = self.dense_time_s(layer)
        return PerformanceStats(
            cycles=0,
            time_s=time_s,
            macs_performed=layer.dense_weights,
            dense_macs=layer.dense_weights,
            clock_hz=self.clock_mhz * 1e6,
        )

    def energy(self, layer: LayerSpec) -> EnergyStats:
        """Energy of one frame at the platform's rated power."""
        time_s = self.dense_time_s(layer)
        return EnergyStats(
            energy_j=time_s * self.power_w,
            power_w=self.power_w,
            breakdown={"edram": time_s * self.memory_power_w},
        )

    def frames_per_second(self, layer: LayerSpec) -> float:
        """M x V throughput on ``layer``."""
        return 1.0 / self.dense_time_s(layer)
