"""Baseline platform models: CPU, GPU, mobile GPU and other accelerators.

The paper compares EIE against measured wall-clock time and power on an Intel
Core i7-5930k (MKL GEMV / MKL sparse CSRMV), an NVIDIA GeForce Titan X
(cuBLAS / cuSPARSE) and an NVIDIA Tegra K1, plus published numbers for A-Eye,
DaDianNao and TrueNorth.  We cannot measure that hardware here, so each
platform is an analytic roofline model (effective compute throughput plus
effective memory bandwidth, separately for dense and sparse kernels)
calibrated against the paper's Table IV, which reproduces who wins, by what
factor, and the batching/sparsity crossovers (see DESIGN.md 'Substitutions').
"""

from repro.baselines.platforms import (
    EIE_PLATFORM_28NM_256PE,
    EIE_PLATFORM_45NM_64PE,
    OTHER_ACCELERATORS,
    PlatformComparison,
    build_table5,
)
from repro.baselines.reference import (
    PAPER_ENERGY_EFFICIENCY_GEOMEAN,
    PAPER_SPEEDUP_GEOMEAN,
    PAPER_TABLE_IV_US,
)
from repro.baselines.roofline import RooflinePlatform, RooflineSpec
from repro.baselines.specs import (
    CPU_CORE_I7_5930K,
    GPU_TITAN_X,
    MOBILE_GPU_TEGRA_K1,
    PlatformSpec,
)
from repro.baselines.dadiannao import DaDianNaoModel

__all__ = [
    "CPU_CORE_I7_5930K",
    "DaDianNaoModel",
    "EIE_PLATFORM_28NM_256PE",
    "EIE_PLATFORM_45NM_64PE",
    "GPU_TITAN_X",
    "MOBILE_GPU_TEGRA_K1",
    "OTHER_ACCELERATORS",
    "PAPER_ENERGY_EFFICIENCY_GEOMEAN",
    "PAPER_SPEEDUP_GEOMEAN",
    "PAPER_TABLE_IV_US",
    "PlatformComparison",
    "PlatformSpec",
    "RooflinePlatform",
    "RooflineSpec",
    "build_table5",
]
