"""Static descriptions of the comparison platforms.

The headline attributes (year, technology node, clock, memory type, power,
area) come from Table V of the paper.  The roofline parameters (effective
dense/sparse compute throughput and memory bandwidth) are calibrated so the
analytic timing model reproduces the paper's measured Table IV wall-clock
times on the AlexNet FC6 layer; see
:mod:`repro.baselines.roofline` for how they are used.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import require_positive

__all__ = [
    "PlatformSpec",
    "CPU_CORE_I7_5930K",
    "GPU_TITAN_X",
    "MOBILE_GPU_TEGRA_K1",
]


@dataclass(frozen=True)
class PlatformSpec:
    """Headline characteristics and roofline parameters of one platform.

    Attributes:
        name: platform name as used in the paper.
        platform_type: CPU / GPU / mGPU / FPGA / ASIC.
        year: year of introduction (Table V).
        technology_nm: process node.
        clock_mhz: clock frequency.
        memory_type: main weight store (DRAM / eDRAM / SRAM).
        power_w: measured power while running M x V.
        area_mm2: die area (``None`` where the paper does not report it).
        max_model_params: largest DNN model the platform can hold.
        dense_gflops: effective dense GEMM throughput (batched).
        dense_bandwidth_gbs: effective DRAM bandwidth for dense GEMV.
        sparse_gflops: effective sparse-kernel throughput (batched).
        sparse_bandwidth_gbs: effective DRAM bandwidth for sparse M x V.
    """

    name: str
    platform_type: str
    year: int
    technology_nm: int
    clock_mhz: float
    memory_type: str
    power_w: float
    area_mm2: float | None
    max_model_params: float
    dense_gflops: float
    dense_bandwidth_gbs: float
    sparse_gflops: float
    sparse_bandwidth_gbs: float

    def __post_init__(self) -> None:
        require_positive("power_w", self.power_w)
        require_positive("dense_gflops", self.dense_gflops)
        require_positive("dense_bandwidth_gbs", self.dense_bandwidth_gbs)
        require_positive("sparse_gflops", self.sparse_gflops)
        require_positive("sparse_bandwidth_gbs", self.sparse_bandwidth_gbs)


#: Intel Core i7-5930K (Haswell-E), MKL CBLAS GEMV / MKL SPBLAS CSRMV.
CPU_CORE_I7_5930K = PlatformSpec(
    name="Core i7-5930K",
    platform_type="CPU",
    year=2014,
    technology_nm=22,
    clock_mhz=3500.0,
    memory_type="DRAM",
    power_w=73.0,
    area_mm2=356.0,
    max_model_params=16e9,
    dense_gflops=237.0,
    dense_bandwidth_gbs=20.0,
    sparse_gflops=4.8,
    sparse_bandwidth_gbs=8.9,
)

#: NVIDIA GeForce GTX Titan X, cuBLAS GEMV / cuSPARSE CSRMV.
GPU_TITAN_X = PlatformSpec(
    name="GeForce Titan X",
    platform_type="GPU",
    year=2015,
    technology_nm=28,
    clock_mhz=1075.0,
    memory_type="DRAM",
    power_w=159.0,
    area_mm2=601.0,
    max_model_params=3e9,
    dense_gflops=3800.0,
    dense_bandwidth_gbs=280.0,
    sparse_gflops=72.0,
    sparse_bandwidth_gbs=202.0,
)

#: NVIDIA Tegra K1 (192 CUDA cores), cuBLAS GEMV / cuSPARSE CSRMV.
MOBILE_GPU_TEGRA_K1 = PlatformSpec(
    name="Tegra K1",
    platform_type="mGPU",
    year=2014,
    technology_nm=28,
    clock_mhz=852.0,
    memory_type="DRAM",
    power_w=5.1,
    area_mm2=None,
    max_model_params=500e6,
    dense_gflops=45.0,
    dense_bandwidth_gbs=12.1,
    sparse_gflops=1.7,
    sparse_bandwidth_gbs=9.4,
)
