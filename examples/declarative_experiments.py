#!/usr/bin/env python3
"""Declarative experiments: run any paper artifact from a JSON-able spec.

Demonstrates the `repro.experiments` layer end-to-end:

1. list the registry and run one named experiment with overrides;
2. round-trip the very same run through a JSON spec (what CI and the CLI's
   ``--spec spec.json`` use);
3. run a multi-point sweep concurrently (``jobs=4``) and check it is
   bit-identical to the serial run while sharing one engine session;
4. register a custom experiment and get rendering/JSON output for free.

The sweeps run on 64x-scaled Table III layers so the example finishes in
seconds; drop ``scale`` to regenerate the full-size figures.

Run with:  python examples/declarative_experiments.py
"""

from __future__ import annotations

from repro.engine import Session
from repro.experiments import (
    Experiment,
    ExperimentRegistry,
    ExperimentRunner,
    ExperimentSpec,
    register_experiment,
)

SCALE = 64.0


def run_named_experiment() -> None:
    print("=== 1. The experiment registry ===")
    print("registered:", ", ".join(ExperimentRegistry.names()))
    runner = ExperimentRunner()
    result = runner.run(
        "fig8_fifo_depth",
        workloads=("Alex-7", "NT-We"),
        scale=SCALE,
        grid={"fifo_depth": (1, 2, 4, 8, 16)},
        config={"num_pes": 16},
    )
    print(result.to_table())
    print()


def round_trip_a_spec() -> None:
    print("=== 2. Specs are JSON ===")
    spec = ExperimentSpec(
        experiment="fig9_sram_width",
        workloads=("Alex-7",),
        scale=SCALE,
        grid={"width_bits": (32, 64, 128)},
        config={"num_pes": 16},
    )
    text = spec.to_json()
    print(text)
    assert ExperimentSpec.from_json(text) == spec
    result = ExperimentRunner().run(ExperimentSpec.from_json(text))
    print(result.to_table())
    print()


def parallel_equals_serial() -> None:
    print("=== 3. --jobs N is bit-identical to serial ===")
    session = Session()
    runner = ExperimentRunner(session=session)
    kwargs = dict(
        workloads=("Alex-7", "NT-We", "VGG-7"),
        scale=SCALE,
        grid={"num_pes": (1, 4, 16)},
    )
    serial = runner.run("fig11_scalability", jobs=1, **kwargs)
    parallel = runner.run("fig11_scalability", jobs=4, **kwargs)
    assert parallel.records == serial.records
    info = session.cache_info()
    print(parallel.to_table())
    print(f"shared session: {info['prepared']['hits']} prepared-layer cache hits")
    print()


def register_custom_experiment() -> None:
    print("=== 4. A custom experiment in ~15 lines ===")

    def run_point(ctx, point):
        workload = ctx.workload(point["benchmark"])
        config = ctx.config(fifo_depth=int(point["fifo_depth"]))
        stats = ctx.session.run(ctx.engine_name, workload, None, config).stats
        return {"cycles": stats.total_cycles, "balance": stats.load_balance_efficiency}

    register_experiment(Experiment(
        name="custom_depth_study",
        description="cycles and balance for two depths",
        spec=ExperimentSpec(
            experiment="custom_depth_study",
            workloads=("Alex-7",),
            scale=SCALE,
            grid={"fifo_depth": (1, 8)},
            config={"num_pes": 16},
        ),
        run_point=run_point,
    ))
    result = ExperimentRunner().run("custom_depth_study")
    print(result.to_table())          # generic render: no renderer registered
    print()


def main() -> None:
    run_named_experiment()
    round_trip_a_spec()
    parallel_equals_serial()
    register_custom_experiment()
    print("Every run above is reproducible from its spec JSON alone:")
    print("  python -m repro.cli experiment run --spec spec.json --jobs 4")


if __name__ == "__main__":
    main()
