#!/usr/bin/env python3
"""AlexNet FC-tail inference on EIE versus CPU and GPU baselines.

Reproduces, at a reduced scale that runs in seconds, the scenario of the
paper's introduction: the fully-connected layers FC6-FC8 of a compressed
AlexNet run as a latency-critical (batch-1) workload.  The script

* builds the three-layer FC tail with Table III densities,
* compresses and loads it into a 64-PE EIE,
* runs functional inference (checking against the software reference),
* and compares per-layer latency and energy against the analytic CPU / GPU /
  mobile-GPU baselines — the same comparison as Figure 6 / Figure 7, plus the
  full-scale Table III layer estimates at the end.

Run with:  python examples/alexnet_fc_inference.py
"""

from __future__ import annotations

import numpy as np

from repro import EIEAccelerator, EIEConfig
from repro.analysis.report import format_table
from repro.baselines.roofline import RooflinePlatform
from repro.baselines.specs import CPU_CORE_I7_5930K, GPU_TITAN_X, MOBILE_GPU_TEGRA_K1
from repro.hardware.area import chip_power_w
from repro.workloads.benchmarks import get_benchmark
from repro.workloads.generator import WorkloadBuilder
from repro.workloads.models import build_alexnet_fc_network

#: Each dimension of the real AlexNet FC layers is divided by this factor.
SCALE = 16.0
NUM_PES = 64


def run_scaled_network() -> None:
    """Compress the scaled FC tail, run it on EIE and report per-layer stats."""
    network = build_alexnet_fc_network(scale=SCALE)
    accelerator = EIEAccelerator(EIEConfig(num_pes=NUM_PES))
    for layer in network.layers:
        accelerator.compress_and_load(
            layer.weight, name=layer.name, activation_name=layer.activation
        )

    rng = np.random.default_rng(1)
    # FC6's input comes from a ReLU'd conv layer: ~35% non-zero.
    inputs = rng.uniform(0.1, 1.0, size=network.input_size)
    inputs[rng.random(network.input_size) >= 0.35] = 0.0

    results = accelerator.run(inputs)
    print(f"Scaled AlexNet FC tail (1/{SCALE:g} per dimension), {NUM_PES} PEs")
    rows = []
    current_input = inputs
    for compressed, result in zip(accelerator.layers, results):
        estimate = accelerator.estimate_layer(compressed, current_input, run_functional=False)
        rows.append(
            [
                compressed.name,
                f"{compressed.cols} -> {compressed.rows}",
                f"{compressed.weight_density:.0%}",
                f"{result.activation_density:.0%}",
                result.total_entries_processed,
                estimate.cycles.total_cycles,
                f"{estimate.performance.time_us:.2f}",
                f"{estimate.cycles.load_balance_efficiency:.0%}",
            ]
        )
        current_input = result.output
    print(
        format_table(
            ["Layer", "Shape", "Weight%", "Act%", "Entries", "Cycles", "Latency (us)", "Load bal."],
            rows,
        )
    )
    output = results[-1].output
    print(f"\nTop-5 output neurons: {np.argsort(output)[-5:][::-1].tolist()}")


def compare_against_baselines() -> None:
    """Full-scale Table III AlexNet layers: EIE versus CPU / GPU / mGPU."""
    print("\nFull-scale AlexNet FC layers, batch size 1 (latency-critical):")
    builder = WorkloadBuilder()
    config = EIEConfig(num_pes=NUM_PES)
    platforms = {
        "CPU (i7-5930k)": RooflinePlatform(CPU_CORE_I7_5930K),
        "GPU (Titan X)": RooflinePlatform(GPU_TITAN_X),
        "mGPU (Tegra K1)": RooflinePlatform(MOBILE_GPU_TEGRA_K1),
    }
    rows = []
    for name in ("Alex-6", "Alex-7", "Alex-8"):
        spec = get_benchmark(name)
        workload = builder.build(spec, config.num_pes)
        eie = workload.simulate(config)
        eie_energy = eie.time_s * chip_power_w(config.num_pes)
        row = [name, f"{eie.time_s * 1e6:.1f}"]
        for platform_name, model in platforms.items():
            dense_time = model.dense_time_s(spec, batch=1)
            row.append(f"{dense_time * 1e6:.0f}")
            row.append(f"{dense_time / eie.time_s:.0f}x")
        row.append(f"{eie_energy * 1e6:.1f}")
        rows.append(row)
    print(
        format_table(
            ["Layer", "EIE (us)",
             "CPU (us)", "speedup", "GPU (us)", "speedup", "mGPU (us)", "speedup",
             "EIE energy (uJ)"],
            rows,
        )
    )


def main() -> None:
    run_scaled_network()
    compare_against_baselines()


if __name__ == "__main__":
    main()
