#!/usr/bin/env python3
"""AlexNet FC-tail inference on EIE versus CPU and GPU baselines.

Reproduces, at a reduced scale that runs in seconds, the scenario of the
paper's introduction: the fully-connected layers FC6-FC8 of a compressed
AlexNet run as a latency-critical (batch-1) workload.  The script

* builds the three-layer FC tail as a whole-network model
  (``repro.models``'s registered ``alexnet_fc`` at Table III densities),
* compresses every node through one ``Session.compress_model`` call,
* runs the whole model on the functional engine (checking against the dense
  reference) and on the cycle engine — one ``Session.run_model`` call each,
  with the measured inter-layer activation sparsity feeding every node,
* and compares per-layer latency and energy against the analytic CPU / GPU /
  mobile-GPU baselines — the same comparison as Figure 6 / Figure 7, plus the
  full-scale Table III layer estimates at the end.

Run with:  python examples/alexnet_fc_inference.py
(set REPRO_EXAMPLE_SCALE to change the size, e.g. 64 for smoke tests)
"""

from __future__ import annotations

import os

import numpy as np

from repro import EIEConfig, Session, build_model
from repro.analysis.report import format_table
from repro.baselines.roofline import RooflinePlatform
from repro.baselines.specs import CPU_CORE_I7_5930K, GPU_TITAN_X, MOBILE_GPU_TEGRA_K1
from repro.hardware.area import chip_power_w
from repro.workloads.benchmarks import get_benchmark
from repro.workloads.generator import WorkloadBuilder

#: Each dimension of the real AlexNet FC layers is divided by this factor.
SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "16"))
NUM_PES = 64


def run_scaled_network() -> None:
    """Compress the scaled FC tail as one model and run it end to end on EIE."""
    model = build_model("alexnet_fc", scale=SCALE)
    config = EIEConfig(num_pes=NUM_PES)
    session = Session(config=config)
    compressed = session.compress_model(model, num_pes=NUM_PES)

    rng = np.random.default_rng(1)
    # FC6's input comes from a ReLU'd conv layer: ~35% non-zero.
    inputs = rng.uniform(0.1, 1.0, size=model.input_size)
    inputs[rng.random(model.input_size) >= model.input_density] = 0.0

    # One call runs all three layers, propagating the measured activations;
    # the cycle run reuses the compressed model from the session cache.
    functional = session.run_model("functional", model, inputs)
    timing = session.run_model("cycle", model, inputs)

    reference = model.trace(inputs)  # dense float reference on the IR weights
    print(f"Scaled AlexNet FC tail (1/{SCALE:g} per dimension), {NUM_PES} PEs")
    rows = []
    for node_run, cycle_run in zip(functional.nodes, timing.nodes):
        result = node_run.result.functional[0]
        stats = cycle_run.result.cycles[0]
        rows.append(
            [
                node_run.name,
                f"{node_run.layer.cols} -> {node_run.layer.rows}",
                f"{node_run.layer.weight_density:.0%}",
                f"{node_run.input_density:.0%}",
                result.total_entries_processed,
                stats.total_cycles,
                f"{stats.time_s * 1e6:.2f}",
                f"{stats.load_balance_efficiency:.0%}",
            ]
        )
    print(
        format_table(
            ["Layer", "Shape", "Weight%", "Act%", "Entries", "Cycles", "Latency (us)", "Load bal."],
            rows,
        )
    )
    print(f"\nWhole network: {timing.total_cycles} cycles, "
          f"{timing.latency_s * 1e6:.2f} us, {timing.energy_j * 1e6:.3f} uJ")
    output = functional.output
    print(f"Top-5 output neurons: {np.argsort(output)[-5:][::-1].tolist()}")
    # The quantized (4-bit shared weights) output tracks the dense reference.
    error = np.max(np.abs(output - reference.output)) / (np.max(np.abs(reference.output)) or 1.0)
    print(f"Max relative deviation from dense float reference: {error:.1%} "
          "(4-bit weight sharing)")


def compare_against_baselines() -> None:
    """Full-scale Table III AlexNet layers: EIE versus CPU / GPU / mGPU."""
    print("\nFull-scale AlexNet FC layers, batch size 1 (latency-critical):")
    builder = WorkloadBuilder()
    config = EIEConfig(num_pes=NUM_PES)
    platforms = {
        "CPU (i7-5930k)": RooflinePlatform(CPU_CORE_I7_5930K),
        "GPU (Titan X)": RooflinePlatform(GPU_TITAN_X),
        "mGPU (Tegra K1)": RooflinePlatform(MOBILE_GPU_TEGRA_K1),
    }
    rows = []
    for name in ("Alex-6", "Alex-7", "Alex-8"):
        spec = get_benchmark(name)
        workload = builder.build(spec, config.num_pes)
        eie = workload.simulate(config)
        eie_energy = eie.time_s * chip_power_w(config.num_pes)
        row = [name, f"{eie.time_s * 1e6:.1f}"]
        for platform_name, model in platforms.items():
            dense_time = model.dense_time_s(spec, batch=1)
            row.append(f"{dense_time * 1e6:.0f}")
            row.append(f"{dense_time / eie.time_s:.0f}x")
        row.append(f"{eie_energy * 1e6:.1f}")
        rows.append(row)
    print(
        format_table(
            ["Layer", "EIE (us)",
             "CPU (us)", "speedup", "GPU (us)", "speedup", "mGPU (us)", "speedup",
             "EIE energy (uJ)"],
            rows,
        )
    )


def main() -> None:
    run_scaled_network()
    compare_against_baselines()


if __name__ == "__main__":
    main()
