#!/usr/bin/env python3
"""NeuralTalk-style LSTM image captioning on EIE.

The paper's NT benchmarks come from NeuralTalk: a word-embedding matrix
(NT-We), the LSTM gate matrices (NT-LSTM) and a word decoder (NT-Wd).  This
example lowers a scaled-down NeuralTalk decoder through the whole-network
model layer (``repro.models``):

* the LSTM step becomes a :class:`ModelIR` — the ``stacked`` lowering (the
  paper's 1201 x 2400 NT-LSTM view) drives the caption-generation loop, and
  the ``per_gate`` lowering reports per-gate cycle statistics with one
  ``Session.run_model`` call;
* software applies the gate non-linearities between EIE M x V calls, exactly
  as the paper describes;
* the full-scale NT layer latencies close the loop at the end.

Run with:  python examples/neuraltalk_lstm.py
(set REPRO_EXAMPLE_SCALE to change the size, e.g. 16 for smoke tests)
"""

from __future__ import annotations

import os

import numpy as np

from repro import EIEConfig, Session
from repro.analysis.report import format_table
from repro.hardware.area import chip_power_w
from repro.models import MatVecNode, ModelIR
from repro.nn.layers import sigmoid, tanh
from repro.nn.lstm import LSTMState
from repro.workloads.benchmarks import get_benchmark
from repro.workloads.generator import WorkloadBuilder
from repro.workloads.models import build_neuraltalk_lstm

NUM_PES = 32        # the paper notes small NT matrices run best on <= 32 PEs
SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "8"))
SEQUENCE_LENGTH = 6
VOCABULARY = 64


def run_captioning_demo(session: Session) -> ModelIR:
    """Generate a short 'caption' (token ids) with the compressed LSTM on EIE."""
    rng = np.random.default_rng(5)
    cell = build_neuraltalk_lstm(scale=SCALE)

    # The stacked lowering computes all eight gate products as one M x V per
    # step (the NT-LSTM benchmark view); the decoder is a one-node chain.
    lstm_model = ModelIR.from_lstm(cell, mode="stacked", name="nt-lstm")
    decoder_weights = rng.normal(0.0, 0.2, size=(VOCABULARY, cell.hidden_size))
    decoder_weights[rng.random(decoder_weights.shape) >= 0.11] = 0.0
    decoder_weights[0, 0] = 0.2
    # A single identity M x V node: logits = W_d h.
    decoder_model = ModelIR(
        [MatVecNode(name="NT-Wd", weight=decoder_weights, activation="identity")],
        name="nt-decoder",
    )
    embedding = rng.normal(0.0, 0.3, size=(VOCABULARY, cell.input_size))

    state = LSTMState.zeros(cell.hidden_size)
    token = 0
    caption = [token]
    total_entries = 0
    hidden = cell.hidden_size
    for _ in range(SEQUENCE_LENGTH):
        inputs = embedding[token]
        stacked_input = np.concatenate([inputs, state.hidden])
        # One EIE M x V computes all eight gate products on the stacked matrix.
        gates = session.run_model("functional", lstm_model, stacked_input)
        total_entries += sum(
            f.total_entries_processed for f in gates.nodes[0].result.functional
        )
        # Software applies the LSTM non-linearities (EIE handles M x V only).
        pre = gates.output
        input_gate = sigmoid(pre[0 * hidden: 1 * hidden])
        forget_gate = sigmoid(pre[1 * hidden: 2 * hidden])
        output_gate = sigmoid(pre[2 * hidden: 3 * hidden])
        candidate = tanh(pre[3 * hidden: 4 * hidden])
        new_cell = forget_gate * state.cell + input_gate * candidate
        state = LSTMState(hidden=output_gate * tanh(new_cell), cell=new_cell)
        # Decoder M x V produces the vocabulary logits; pick the next token.
        logits = session.run_model("functional", decoder_model, state.hidden)
        total_entries += sum(
            f.total_entries_processed for f in logits.nodes[0].result.functional
        )
        token = int(np.argmax(logits.output))
        caption.append(token)

    lstm_layer = session.compress_model(lstm_model, NUM_PES).layer("gates_stacked")
    print("=== Scaled NeuralTalk captioning demo ===")
    print(f"LSTM stacked matrix  : {lstm_layer.rows} x {lstm_layer.cols} "
          f"({lstm_layer.weight_density:.0%} dense)")
    print(f"decoder matrix       : {decoder_weights.shape[0]} x {decoder_weights.shape[1]}")
    print(f"generated token ids  : {caption}")
    print(f"EIE entries processed: {total_entries}")
    return ModelIR.from_lstm(cell, mode="per_gate", name="nt-lstm-gates")


def report_per_gate_timing(session: Session, per_gate_model: ModelIR) -> None:
    """Whole-model cycle statistics, one row per LSTM gate."""
    rng = np.random.default_rng(11)
    inputs = rng.normal(0.0, 0.3, size=per_gate_model.input_size)  # NT Act% = 100%
    run = session.run_model("cycle", per_gate_model, inputs)
    rows = [
        [node.name, f"{node.layer.rows} x {node.layer.cols}",
         f"{node.layer.weight_density:.0%}", node.total_cycles,
         f"{node.latency_s * 1e6:.2f}"]
        for node in run.nodes
    ]
    print(f"\n=== Per-gate LSTM step on EIE ({NUM_PES} PEs) ===")
    print(format_table(["Gate", "Shape", "Weight%", "Cycles", "Latency (us)"], rows))
    print(f"whole step: {run.total_cycles} cycles, {run.latency_s * 1e6:.2f} us, "
          f"{run.energy_j * 1e6:.3f} uJ")


def report_full_scale_latency() -> None:
    """Latency/energy of the full-scale NT layers per caption step."""
    builder = WorkloadBuilder()
    config = EIEConfig(num_pes=NUM_PES)
    rows = []
    total_time = 0.0
    for name in ("NT-We", "NT-LSTM", "NT-Wd"):
        spec = get_benchmark(name)
        workload = builder.build(spec, config.num_pes)
        stats = workload.simulate(config)
        total_time += stats.time_s
        rows.append(
            [name, f"{spec.input_size} -> {spec.output_size}", stats.total_cycles,
             f"{stats.time_s * 1e6:.2f}", f"{stats.load_balance_efficiency:.0%}",
             f"{stats.time_s * chip_power_w(config.num_pes) * 1e6:.2f}"]
        )
    print("\n=== Full-scale NeuralTalk layers on EIE (32 PEs, 800 MHz) ===")
    print(format_table(
        ["Layer", "Shape", "Cycles", "Latency (us)", "Load bal.", "Energy (uJ)"], rows
    ))
    print(f"\nPer caption step (We + LSTM + Wd): {total_time * 1e6:.1f} us "
          f"-> {1.0 / total_time:.0f} steps/second")


def main() -> None:
    session = Session(config=EIEConfig(num_pes=NUM_PES))
    per_gate_model = run_captioning_demo(session)
    report_per_gate_timing(session, per_gate_model)
    report_full_scale_latency()


if __name__ == "__main__":
    main()
