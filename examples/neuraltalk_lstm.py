#!/usr/bin/env python3
"""NeuralTalk-style LSTM image captioning on EIE.

The paper's NT benchmarks come from NeuralTalk: a word-embedding matrix
(NT-We), the LSTM gate matrices (NT-LSTM) and a word decoder (NT-Wd).  This
example builds a scaled-down NeuralTalk decoder with sparse weights, runs a
caption-generation loop step by step, and for every time step executes the
eight LSTM matrix-vector products plus the decoder M x V on the EIE
functional simulator, reporting the latency the cycle model predicts for the
full-scale NT layers.

Run with:  python examples/neuraltalk_lstm.py
"""

from __future__ import annotations

import numpy as np

from repro import EIEConfig
from repro.analysis.report import format_table
from repro.compression import CompressionConfig, DeepCompressor
from repro.core import CycleAccurateEIE, FunctionalEIE
from repro.core.config import EIEConfig
from repro.hardware.area import chip_power_w
from repro.nn.lstm import LSTMState
from repro.workloads.benchmarks import get_benchmark
from repro.workloads.generator import WorkloadBuilder
from repro.workloads.models import build_neuraltalk_lstm

NUM_PES = 32        # the paper notes small NT matrices run best on <= 32 PEs
SCALE = 8.0         # hidden size 600/8 = 75 for the interactive demo
SEQUENCE_LENGTH = 6
VOCABULARY = 64


def run_captioning_demo() -> None:
    """Generate a short 'caption' (token ids) with the compressed LSTM on EIE."""
    rng = np.random.default_rng(5)
    cell = build_neuraltalk_lstm(scale=SCALE)
    compressor = DeepCompressor(CompressionConfig())
    config = EIEConfig(num_pes=NUM_PES)

    # Compress the stacked LSTM matrix (the NT-LSTM benchmark view) and the
    # word decoder; the embedding is dense lookup so it stays in software.
    stacked = cell.stacked_matrix()
    lstm_layer = compressor.compress(stacked, num_pes=NUM_PES, name="NT-LSTM(stacked)",
                                     activation_name="identity")
    decoder_weights = rng.normal(0.0, 0.2, size=(VOCABULARY, cell.hidden_size))
    decoder_weights[rng.random(decoder_weights.shape) >= 0.11] = 0.0
    decoder_weights[0, 0] = 0.2
    decoder_layer = compressor.compress(decoder_weights, num_pes=NUM_PES, name="NT-Wd(scaled)",
                                        activation_name="identity")
    lstm_sim = FunctionalEIE(lstm_layer, config)
    decoder_sim = FunctionalEIE(decoder_layer, config)
    embedding = rng.normal(0.0, 0.3, size=(VOCABULARY, cell.input_size))

    state = LSTMState.zeros(cell.hidden_size)
    token = 0
    caption = [token]
    total_entries = 0
    for _ in range(SEQUENCE_LENGTH):
        inputs = embedding[token]
        # One EIE M x V computes all eight gate products on the stacked matrix.
        stacked_input = np.concatenate([inputs, state.hidden])
        gate_result = lstm_sim.run(stacked_input, apply_nonlinearity=False)
        total_entries += gate_result.total_entries_processed
        # Software applies the LSTM non-linearities (EIE handles M x V only).
        hidden = cell.hidden_size
        from repro.nn.layers import sigmoid, tanh

        pre = gate_result.output
        input_gate = sigmoid(pre[0 * hidden: 1 * hidden])
        forget_gate = sigmoid(pre[1 * hidden: 2 * hidden])
        output_gate = sigmoid(pre[2 * hidden: 3 * hidden])
        candidate = tanh(pre[3 * hidden: 4 * hidden])
        new_cell = forget_gate * state.cell + input_gate * candidate
        state = LSTMState(hidden=output_gate * tanh(new_cell), cell=new_cell)
        # Decoder M x V produces the vocabulary logits; pick the next token.
        logits = decoder_sim.run(state.hidden, apply_nonlinearity=False)
        total_entries += logits.total_entries_processed
        token = int(np.argmax(logits.output))
        caption.append(token)

    print("=== Scaled NeuralTalk captioning demo ===")
    print(f"LSTM stacked matrix  : {lstm_layer.rows} x {lstm_layer.cols} "
          f"({lstm_layer.weight_density:.0%} dense)")
    print(f"decoder matrix       : {decoder_layer.rows} x {decoder_layer.cols}")
    print(f"generated token ids  : {caption}")
    print(f"EIE entries processed: {total_entries}")


def report_full_scale_latency() -> None:
    """Latency/energy of the full-scale NT layers per caption step."""
    builder = WorkloadBuilder()
    config = EIEConfig(num_pes=NUM_PES)
    rows = []
    total_time = 0.0
    for name in ("NT-We", "NT-LSTM", "NT-Wd"):
        spec = get_benchmark(name)
        workload = builder.build(spec, config.num_pes)
        stats = workload.simulate(config)
        total_time += stats.time_s
        rows.append(
            [name, f"{spec.input_size} -> {spec.output_size}", stats.total_cycles,
             f"{stats.time_s * 1e6:.2f}", f"{stats.load_balance_efficiency:.0%}",
             f"{stats.time_s * chip_power_w(config.num_pes) * 1e6:.2f}"]
        )
    print("\n=== Full-scale NeuralTalk layers on EIE (32 PEs, 800 MHz) ===")
    print(format_table(
        ["Layer", "Shape", "Cycles", "Latency (us)", "Load bal.", "Energy (uJ)"], rows
    ))
    print(f"\nPer caption step (We + LSTM + Wd): {total_time * 1e6:.1f} us "
          f"-> {1.0 / total_time:.0f} steps/second")


def main() -> None:
    run_captioning_demo()
    report_full_scale_latency()


if __name__ == "__main__":
    main()
