#!/usr/bin/env python3
"""Design-space exploration: reproduce the paper's architecture decisions.

EIE's design fixes three parameters after a design-space study:

* activation FIFO depth = 8 (Figure 8),
* Spmat SRAM interface width = 64 bits (Figure 9),
* arithmetic precision = 16-bit fixed point (Figure 10),

and Section VI-C / Figures 11-13 study how the design scales from 1 to 256
PEs.  This example runs all four sweeps on a subset of the full-scale
benchmarks and prints the same trade-off curves, ending with the design point
the data selects.

The sweep functions used here (`fifo_depth_sweep`, `sram_width_sweep`,
`precision_study`, `pe_sweep`) are thin shims over the declarative
experiments `fig8_fifo_depth`, `fig9_sram_width`, `fig10_precision` and
`fig11_scalability` — see examples/declarative_experiments.py for driving
the same sweeps from JSON specs with `--jobs N` concurrency.

Run with:  python examples/design_space_exploration.py
"""

from __future__ import annotations

from collections import defaultdict

from repro.analysis.design_space import fifo_depth_sweep, precision_study, sram_width_sweep
from repro.analysis.report import format_table, render_series
from repro.analysis.scalability import pe_sweep
from repro.workloads.generator import WorkloadBuilder

#: Subset of Table III benchmarks used for the interactive sweeps.
BENCHMARKS = ("Alex-6", "Alex-7", "NT-We")


def explore_fifo_depth(builder: WorkloadBuilder) -> int:
    print("=== Activation FIFO depth (Figure 8) ===")
    sweep = fifo_depth_sweep((1, 2, 4, 8, 16, 32), BENCHMARKS, num_pes=64, builder=builder)
    print(render_series(sweep, x_label="FIFO depth"))
    # Pick the depth after which doubling buys less than 5 percentage points
    # of efficiency on average (the paper's "diminishing returns beyond 8").
    depths = (1, 2, 4, 8, 16, 32)
    chosen = depths[-1]
    for depth, next_depth in zip(depths, depths[1:]):
        average_gain = sum(sweep[b][next_depth] - sweep[b][depth] for b in BENCHMARKS) / len(BENCHMARKS)
        if average_gain < 0.05:
            chosen = depth
            break
    print(f"-> chosen FIFO depth: {chosen} (paper chooses 8)\n")
    return chosen


def explore_sram_width(builder: WorkloadBuilder) -> int:
    print("=== Spmat SRAM width (Figure 9) ===")
    points = sram_width_sweep((32, 64, 128, 256, 512), ("Alex-6", "Alex-7", "Alex-8"),
                              num_pes=64, builder=builder)
    totals: dict[int, float] = defaultdict(float)
    for point in points:
        totals[point.width_bits] += point.total_energy_nj
    print(format_table(["Width (bits)", "Total Spmat read energy (nJ)"], sorted(totals.items())))
    chosen = min(totals, key=totals.get)
    print(f"-> chosen SRAM width: {chosen} bits (paper chooses 64)\n")
    return chosen


def explore_precision() -> str:
    print("=== Arithmetic precision (Figure 10) ===")
    points = precision_study(num_samples=256)
    print(format_table(
        ["Precision", "Accuracy", "Multiply energy (pJ)"],
        [[p.precision, f"{p.accuracy:.3f}", f"{p.multiply_energy_pj:.2f}"] for p in points],
    ))
    # Pick the cheapest precision within 1% accuracy of float32.
    reference = next(p for p in points if p.precision == "float32")
    viable = [p for p in points if p.accuracy >= reference.accuracy - 0.01]
    chosen = min(viable, key=lambda p: p.multiply_energy_pj).precision
    print(f"-> chosen precision: {chosen} (paper chooses 16-bit fixed point)\n")
    return chosen


def explore_scalability(builder: WorkloadBuilder) -> None:
    print("=== Scalability 1-256 PEs (Figures 11-13) ===")
    sweep = pe_sweep((1, 16, 64, 256), BENCHMARKS, builder=builder)
    speedups = {name: {p.num_pes: round(p.speedup_vs_1pe, 1) for p in points}
                for name, points in sweep.items()}
    balance = {name: {p.num_pes: round(p.load_balance_efficiency, 3) for p in points}
               for name, points in sweep.items()}
    print("Speedup versus 1 PE:")
    print(render_series(speedups, x_label="# PEs"))
    print("\nLoad-balance efficiency:")
    print(render_series(balance, x_label="# PEs"))
    print("-> large layers scale near-linearly; NT-We saturates beyond 32-64 PEs\n")


def main() -> None:
    builder = WorkloadBuilder()
    depth = explore_fifo_depth(builder)
    width = explore_sram_width(builder)
    precision = explore_precision()
    explore_scalability(builder)
    print("=== Selected design point ===")
    print(f"FIFO depth = {depth}, Spmat SRAM width = {width} bits, precision = {precision}, "
          f"64 PEs @ 800 MHz")


if __name__ == "__main__":
    main()
