#!/usr/bin/env python3
"""1x1 and Winograd 3x3 convolution on EIE (Section VII-C, "Flexibility").

The paper points out that EIE can also accelerate convolutions once they are
expressed as channel-wise matrix-vector products: a 1x1 convolution is one
M x V per pixel, and a 3x3 Winograd convolution is 16 M x V per 4x4 tile
(saving 2.25x multiplications over direct convolution).  This example

* lowers a sparse 1x1 convolution to a one-node model
  (``ModelIR.from_conv``), compresses it through a ``Session``, runs *all*
  pixels' channel vectors as one batched ``run_model`` call on the
  functional and cycle engines, and verifies the result against the direct
  convolution;
* runs a Winograd F(2x2, 3x3) convolution and verifies it against the direct
  reference, then reports how many EIE M x V operations the layer maps to and
  the latency the cycle model predicts.

Run with:  python examples/convolution_on_eie.py
"""

from __future__ import annotations

import numpy as np

from repro import EIEConfig, Session
from repro.analysis.report import format_table
from repro.compression import CompressionConfig
from repro.models import ModelIR, conv_activation_batch
from repro.nn.convolution import (
    ConvWorkload,
    conv1x1_as_matvec,
    direct_conv2d,
    winograd_conv2d_3x3,
    winograd_multiplication_savings,
)

NUM_PES = 16


def conv1x1_on_eie() -> None:
    """Run a sparse 1x1 convolution as one batched model run on EIE."""
    rng = np.random.default_rng(3)
    in_channels, out_channels, height, width = 128, 96, 6, 6
    feature_map = np.maximum(rng.normal(size=(in_channels, height, width)), 0.0)
    weight = rng.normal(0.0, 0.1, size=(out_channels, in_channels))

    # Lower the convolution: one (C_out, C_in) node; every pixel's channel
    # vector is one activation vector, so the feature map is a (H*W, C_in)
    # batch that a single run_model call executes.
    model = ModelIR.from_conv(
        weight.reshape(out_channels, in_channels, 1, 1), height, width,
        activation="identity", name="conv1x1",
    )
    session = Session(
        CompressionConfig(target_density=0.15), config=EIEConfig(num_pes=NUM_PES)
    )
    pixels = conv_activation_batch(feature_map, model)
    functional = session.run_model("functional", model, pixels)
    timing = session.run_model("cycle", model, pixels)  # reuses the compressed model

    layer = functional.nodes[0].layer
    output = functional.outputs.T.reshape(out_channels, height, width)
    total_entries = sum(
        f.total_entries_processed for f in functional.nodes[0].result.functional
    )
    total_cycles = timing.total_cycles

    reference = conv1x1_as_matvec(feature_map, layer.dense_weights())
    assert np.allclose(output, reference), "1x1 convolution mismatch"
    workload = ConvWorkload.for_conv1x1(out_channels, in_channels, height, width)
    assert workload.num_matvecs == functional.batch_size
    print("=== 1x1 convolution as per-pixel M x V ===")
    print(format_table(
        ["Quantity", "Value"],
        [
            ["feature map", f"{in_channels} x {height} x {width}"],
            ["weight matrix", f"{out_channels} x {in_channels} ({layer.weight_density:.0%} dense)"],
            ["M x V operations", workload.num_matvecs],
            ["entries processed", total_entries],
            ["cycles (16 PEs)", total_cycles],
            ["latency", f"{total_cycles / (800e6) * 1e6:.1f} us"],
            ["matches direct conv", True],
        ],
    ))


def winograd_demo() -> None:
    """Winograd F(2x2,3x3) correctness and the 2.25x multiplication saving."""
    rng = np.random.default_rng(4)
    feature_map = rng.normal(size=(8, 10, 10))
    kernels = rng.normal(size=(16, 8, 3, 3))
    winograd = winograd_conv2d_3x3(feature_map, kernels)
    direct = direct_conv2d(feature_map, kernels)
    assert np.allclose(winograd, direct), "Winograd mismatch"

    out_channels, in_channels = kernels.shape[:2]
    workload = ConvWorkload.for_winograd_3x3(out_channels, in_channels,
                                             feature_map.shape[1], feature_map.shape[2])
    print("\n=== Winograd F(2x2,3x3) convolution ===")
    print(format_table(
        ["Quantity", "Value"],
        [
            ["output", f"{out_channels} x {winograd.shape[1]} x {winograd.shape[2]}"],
            ["matches direct conv", True],
            ["multiplication saving", f"{winograd_multiplication_savings():.2f}x"],
            ["EIE M x V operations", workload.num_matvecs],
            ["per-M x V matrix", f"{workload.matrix_shape[0]} x {workload.matrix_shape[1]}"],
        ],
    ))


def main() -> None:
    conv1x1_on_eie()
    winograd_demo()


if __name__ == "__main__":
    main()
