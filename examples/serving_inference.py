#!/usr/bin/env python3
"""Online serving on the EIE simulator: dynamic batching under open loop.

Demonstrates the :mod:`repro.serve` layer — the async inference service that
fronts a warm :class:`~repro.engine.Session`:

1. start a :class:`~repro.serve.Server` holding a registry model, compressed
   once at startup, with a dynamic-batching policy (coalesce concurrent
   requests up to ``max_batch`` or until ``max_wait_us`` elapses);
2. fire a concurrent burst and show that coalescing changes *when* requests
   run, never *what* they answer: every response is bit-identical to an
   offline batch-1 ``Session.run_model`` call on the same vector;
3. sweep offered load with the open-loop Poisson generator and read the
   p50/p99 latency and sustained throughput at each rate — the same
   measurement the ``serve_latency`` experiment records.

Run with:  python examples/serving_inference.py
(set REPRO_EXAMPLE_SCALE to shrink the problem, e.g. 64 for smoke tests)
"""

from __future__ import annotations

import asyncio
import os

import numpy as np

from repro.analysis.report import format_table
from repro.core.config import EIEConfig
from repro.engine.session import Session
from repro.models import build_model, synthetic_model_inputs
from repro.serve import BatchPolicy, Server, run_open_loop

_SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "1"))
MODEL_SCALE = max(8.0, _SCALE)
REQUESTS = max(24, int(round(120 / _SCALE)))
RATES_RPS = (200.0, 400.0, 800.0)
NUM_PES = 16


async def main_async() -> None:
    model = build_model("neuraltalk_lstm", scale=MODEL_SCALE)
    config = EIEConfig(num_pes=NUM_PES)
    policy = BatchPolicy(max_batch=16, max_wait_us=1000.0, queue_depth=256)

    print(f"Model: {model.name} (scale {MODEL_SCALE:g}), "
          f"{model.num_nodes} nodes, {NUM_PES} PEs")
    print(f"Policy: max_batch={policy.max_batch}, "
          f"max_wait={policy.max_wait_us:.0f} us, "
          f"queue_depth={policy.queue_depth}\n")

    async with Server([model], config=config, policy=policy) as server:
        # -- concurrent burst: coalesced, but bit-identical per request -------
        burst = synthetic_model_inputs(model, batch=12, seed=7)
        responses = await asyncio.gather(
            *(server.submit(model.name, vector) for vector in burst)
        )
        offline = Session(config=config)
        references = [
            offline.run_model("cycle", model, burst[i], config)
            for i in range(len(burst))
        ]
        identical = all(
            np.array_equal(resp.output, ref.outputs[0])
            and resp.total_cycles == ref.total_cycles
            for resp, ref in zip(responses, references)
        )
        print("=== concurrent burst of 12 requests ===")
        print(f"batch sizes observed     : "
              f"{sorted({resp.batch_size for resp in responses})}")
        print(f"bit-identical to offline : {identical}")
        assert identical

        # -- open-loop offered-load sweep -------------------------------------
        inputs = synthetic_model_inputs(model, batch=REQUESTS, seed=13)
        rows = []
        for rate in RATES_RPS:
            report = await run_open_loop(
                lambda vector: server.submit(model.name, vector),
                inputs,
                rate_rps=rate,
                seed=int(rate),
            )
            rows.append([
                f"{rate:.0f}",
                f"{report.throughput_rps:.0f}",
                f"{report.p50_ms:.2f}",
                f"{report.p99_ms:.2f}",
                f"{report.mean_batch:.1f}",
                report.rejected,
            ])
        print(f"\n=== open-loop sweep ({REQUESTS} requests per rate) ===")
        print(format_table(
            ["Offered rps", "Served rps", "p50 ms", "p99 ms",
             "Mean batch", "Rejected"],
            rows,
        ))

        stats = server.stats()["models"][model.name]
        print(f"\nserver totals: {stats['served']} served over "
              f"{stats['batches']} batches "
              f"(mean batch {stats['mean_batch']:.1f}, "
              f"{stats['rejected']} rejected)")


if __name__ == "__main__":
    asyncio.run(main_async())
