#!/usr/bin/env python3
"""Quickstart: compress one FC layer and run it on EIE.

This example walks through the whole pipeline on a small synthetic layer:

1. create a sparse weight matrix (magnitude pruning);
2. run Deep Compression (weight sharing + relative-indexed interleaved CSC);
3. run the functional EIE simulator and check it against the dense reference;
4. run the cycle-level model and print latency, throughput and energy.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import EIEAccelerator, EIEConfig
from repro.compression import CompressionConfig


def main() -> None:
    rng = np.random.default_rng(0)

    # A 512 x 1024 FC layer pruned to 10% density, as Deep Compression would.
    rows, cols = 512, 1024
    weights = rng.normal(0.0, 0.1, size=(rows, cols))
    accelerator = EIEAccelerator(
        EIEConfig(num_pes=16), CompressionConfig(target_density=0.10)
    )
    layer = accelerator.compress_and_load(weights, name="fc-demo")

    report = layer.storage_report()
    print("=== Deep Compression ===")
    print(f"layer shape               : {layer.rows} x {layer.cols}")
    print(f"weight density            : {layer.weight_density:.1%}")
    print(f"padding-zero fraction     : {layer.padding_fraction:.2%}")
    print(f"compression ratio         : {report['compression_ratio']:.1f}x (fixed 4-bit)")
    print(f"with Huffman coding       : {report['huffman_compression_ratio']:.1f}x")

    # A post-ReLU activation vector: ~35% of the entries are non-zero.
    activations = rng.uniform(0.1, 1.0, size=cols)
    activations[rng.random(cols) >= 0.35] = 0.0

    # Functional simulation, verified against the dense reference.
    result = accelerator.run(activations)[-1]
    reference = np.maximum(layer.dense_weights() @ activations, 0.0)
    assert np.allclose(result.output, reference), "functional simulation mismatch"
    print("\n=== Functional simulation ===")
    print(f"non-zero activations      : {result.broadcasts} / {cols}")
    print(f"entries processed         : {result.total_entries_processed}")
    print(f"matches dense reference   : True")

    # Performance and energy estimate on the cycle-level model.
    estimate = accelerator.estimate_layer(layer, activations)
    print("\n=== Performance / energy estimate (16 PEs @ 800 MHz) ===")
    print(f"cycles                    : {estimate.cycles.total_cycles}")
    print(f"latency                   : {estimate.performance.time_us:.2f} us")
    print(f"load-balance efficiency   : {estimate.cycles.load_balance_efficiency:.1%}")
    print(f"effective throughput      : {estimate.performance.effective_gops:.1f} GOP/s")
    print(f"dense-equivalent          : {estimate.performance.dense_equivalent_gops:.1f} GOP/s")
    print(f"energy per inference      : {estimate.energy.energy_uj:.3f} uJ")
    print(f"chip power                : {estimate.energy.power_w * 1e3:.1f} mW")


if __name__ == "__main__":
    main()
