#!/usr/bin/env python3
"""Batched inference and design sweeps on the unified engine layer.

Demonstrates the :mod:`repro.engine` seam introduced for multi-backend,
batched, cached simulation:

1. compress one FC layer into a :class:`~repro.engine.Session` (the layer is
   compressed once and shared by everything below);
2. run a 64-vector batch through the ``"functional"`` and ``"cycle"``
   backends with a single ``run`` call each, and compare the batched cycle
   path against sequential single-vector simulation;
3. sweep the FIFO depth reusing the one prepared layer (the session's
   prepared-layer cache makes every depth point a pure recurrence run);
4. cross-check a few vectors on the ``"rtl"`` backend.

Run with:  python examples/engine_batched_inference.py
(set REPRO_EXAMPLE_SCALE to shrink the problem, e.g. 8 for smoke tests)
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro import EIEConfig, EngineRegistry, Session
from repro.analysis.report import format_table
from repro.compression import CompressionConfig
from repro.core.cycle_model import CycleAccurateEIE

_SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "1"))
ROWS = COLS = max(128, int(round(1024 / _SCALE)))
BATCH = max(8, int(round(64 / _SCALE)))
NUM_PES = 32


def main() -> None:
    rng = np.random.default_rng(0)
    config = EIEConfig(num_pes=NUM_PES)
    session = Session(CompressionConfig(target_density=0.10), config=config)

    weights = rng.normal(0.0, 0.1, size=(ROWS, COLS))
    layer = session.compress(weights, num_pes=NUM_PES, name="fc-batched")
    batch = rng.uniform(0.1, 1.0, size=(BATCH, COLS))
    batch[rng.random((BATCH, COLS)) >= 0.35] = 0.0

    print(f"Registered engines: {', '.join(EngineRegistry.names())}")
    print(f"Layer: {ROWS} x {COLS} @ {layer.weight_density:.0%} weights, "
          f"{NUM_PES} PEs, batch {BATCH}\n")

    # -- batched functional inference -------------------------------------------
    functional = session.run("functional", layer, batch)
    reference = np.maximum(layer.dense_weights() @ batch.T, 0.0).T
    print("=== functional engine (batched) ===")
    print(f"outputs                  : {functional.outputs.shape}")
    print(f"matches dense reference  : {np.allclose(functional.outputs, reference)}")

    # -- batched cycle simulation vs sequential ----------------------------------
    legacy = CycleAccurateEIE(config)
    start = time.perf_counter()
    sequential = [legacy.simulate_layer(layer, row) for row in batch]
    sequential_s = time.perf_counter() - start

    session.run("cycle", layer, batch[:2])  # warm the prepared-layer cache
    start = time.perf_counter()
    batched = session.run("cycle", layer, batch)
    batched_s = time.perf_counter() - start
    assert all(a.total_cycles == b.total_cycles for a, b in zip(batched.cycles, sequential))

    print("\n=== cycle engine: batched vs sequential ===")
    print(f"sequential               : {BATCH / sequential_s:7.0f} inferences/s")
    print(f"batched                  : {BATCH / batched_s:7.0f} inferences/s "
          f"({sequential_s / batched_s:.1f}x)")

    # -- FIFO sweep on one prepared layer ---------------------------------------
    rows = []
    for depth in (1, 2, 4, 8, 16):
        stats = session.run(
            "cycle", layer, batch[0], config=EIEConfig(num_pes=NUM_PES, fifo_depth=depth)
        ).stats
        rows.append([depth, stats.total_cycles, f"{stats.load_balance_efficiency:.1%}"])
    print("\n=== FIFO-depth sweep (prepared layer shared across depths) ===")
    print(format_table(["FIFO depth", "Cycles", "Load balance"], rows))
    info = session.cache_info()
    print(f"cache: {info['layers']['entries']} layer(s) compressed, "
          f"{info['prepared']['entries']} prepared, "
          f"{info['prepared']['hits']} prepared-cache hits")

    # -- RTL cross-check ----------------------------------------------------------
    rtl = session.run("rtl", layer, batch[:2])
    print("\n=== rtl engine (2 vectors) ===")
    print(f"matches functional       : {np.allclose(rtl.outputs, functional.outputs[:2])}")
    print(f"max PE cycles (vector 0) : {max(r.cycles for r in rtl.extra['rtl'][0])}")


if __name__ == "__main__":
    main()
