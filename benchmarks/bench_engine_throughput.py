"""Engine throughput: single-vector versus batched inference.

Tracks the performance contract of the :mod:`repro.engine` seam on an
AlexNet-FC-sized layer:

* the ``"functional"`` and ``"cycle"`` engines round-trip the layer with
  results identical to the legacy ``FunctionalEIE`` / ``CycleAccurateEIE``
  classes;
* a batched ``run`` of 64 activation vectors on the cycle engine is at least
  1.5x faster than 64 sequential legacy single-vector simulations, and the
  measured inferences/sec of both paths are recorded in the perf trajectory.

The contract used to be 5x when each sequential legacy run re-extracted the
per-(PE, column) work matrices from the CSC storage; that extraction is now
computed once and cached on the storage itself (so the legacy path got much
faster too), and the remaining batched advantage is the timing recurrence
advancing all 64 items per broadcast block instead of one at a time.
"""

from __future__ import annotations

import time

import numpy as np

from repro.compression.pipeline import CompressionConfig
from repro.core.config import EIEConfig
from repro.core.cycle_model import CycleAccurateEIE
from repro.core.functional import FunctionalEIE
from repro.engine import EngineRegistry, Session
from repro.experiments import ExperimentResult
from repro.utils.rng import make_rng

from benchmarks.conftest import write_result

#: AlexNet-FC-like layer (Alex-7 densities at half scale per dimension).
ROWS, COLS = 2048, 2048
WEIGHT_DENSITY = 0.09
ACTIVATION_DENSITY = 0.35
BATCH = 64
NUM_PES = 64


def _build_layer_and_batch():
    rng = make_rng(7)
    weights = rng.normal(0.0, 0.1, size=(ROWS, COLS))
    session = Session(CompressionConfig(target_density=WEIGHT_DENSITY),
                      config=EIEConfig(num_pes=NUM_PES))
    layer = session.compress(weights, num_pes=NUM_PES, name="alex7-half")
    batch = rng.uniform(0.1, 1.0, size=(BATCH, COLS))
    batch[rng.random((BATCH, COLS)) >= ACTIVATION_DENSITY] = 0.0
    return session, layer, batch


def test_engine_throughput_batched_vs_sequential(benchmark, results_dir):
    """Round-trip parity at scale plus the >= 5x batched-throughput contract."""
    session, layer, batch = _build_layer_and_batch()
    config = session.default_config

    # -- round-trip parity against the pre-refactor classes -------------------
    vector = batch[0]
    cycle_engine = EngineRegistry.create("cycle", config)
    engine_stats = cycle_engine.run(cycle_engine.prepare(layer), vector).stats
    legacy_stats = CycleAccurateEIE(config).simulate_layer(layer, vector)
    assert engine_stats.total_cycles == legacy_stats.total_cycles
    assert np.array_equal(engine_stats.busy_cycles, legacy_stats.busy_cycles)
    assert engine_stats.padding_entries == legacy_stats.padding_entries

    functional_engine = EngineRegistry.create("functional", config)
    engine_output = functional_engine.run(functional_engine.prepare(layer), vector).output
    legacy_output = FunctionalEIE(layer, config).run(vector).output
    assert np.array_equal(engine_output, legacy_output)

    # -- throughput: 64 sequential legacy runs vs one batched engine run ------
    legacy = CycleAccurateEIE(config)
    start = time.perf_counter()
    sequential = [legacy.simulate_layer(layer, row) for row in batch]
    sequential_s = time.perf_counter() - start

    session.run("cycle", layer, batch[:2])  # warm the prepared-layer cache
    start = time.perf_counter()
    batched = session.run("cycle", layer, batch)
    batched_s = time.perf_counter() - start

    assert all(
        ours.total_cycles == theirs.total_cycles
        and ours.entries_processed == theirs.entries_processed
        and ours.padding_entries == theirs.padding_entries
        for ours, theirs in zip(batched.cycles, sequential)
    )
    speedup = sequential_s / batched_s
    assert speedup >= 1.5, (
        f"batched cycle simulation is only {speedup:.1f}x faster than "
        f"{BATCH} sequential runs (need >= 1.5x)"
    )

    result = benchmark.pedantic(
        session.run, args=("cycle", layer, batch), rounds=3, iterations=1
    )
    assert len(result.cycles) == BATCH

    perf = ExperimentResult.from_records(
        "engine_throughput",
        [
            {
                "layer": f"{ROWS} x {COLS} @ {WEIGHT_DENSITY:.0%} weights",
                "batch": BATCH,
                "sequential_inferences_per_s": BATCH / sequential_s,
                "batched_inferences_per_s": BATCH / batched_s,
                "speedup": speedup,
            }
        ],
        engine="cycle",
    )
    write_result(results_dir, perf,
                 extra="Contract: batched cycle simulation must be >= 1.5x faster "
                       "than sequential legacy runs (which now reuse the cached "
                       "per-layer work matrices).")
