"""Figure 10: prediction accuracy and multiply energy versus arithmetic precision.

Regenerates the accuracy-proxy / multiplier-energy trade-off for 32-bit
float, 32-bit, 16-bit and 8-bit fixed point through the ``"fig10_precision"``
experiment and checks the paper's conclusions: 16-bit fixed point costs ~5x
less multiply energy than 32-bit fixed point and ~6x less than float while
losing almost no accuracy, whereas 8-bit fixed point collapses.
"""

from __future__ import annotations

from benchmarks.conftest import write_result


def test_fig10_arithmetic_precision(benchmark, runner, results_dir):
    """Regenerate Figure 10."""
    result = benchmark.pedantic(
        runner.run,
        args=("fig10_precision",),
        kwargs={"params": {"num_samples": 512}},
        rounds=1,
        iterations=1,
    )
    write_result(results_dir, result)
    by_precision = {point.precision: point for point in result.legacy()}

    float32 = by_precision["float32"]
    int16 = by_precision["int16"]
    int8 = by_precision["int8"]
    # Accuracy: 16-bit is nearly lossless, 8-bit degrades substantially.
    assert float32.accuracy - int16.accuracy < 0.03
    assert int8.accuracy < int16.accuracy - 0.05
    # Energy: the ratios quoted in the paper (5x vs int32, ~6.2x vs float32).
    assert by_precision["int32"].multiply_energy_pj / int16.multiply_energy_pj > 4.5
    assert float32.multiply_energy_pj / int16.multiply_energy_pj > 5.5
