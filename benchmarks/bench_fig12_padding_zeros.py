"""Figure 12: real work / total work (padding-zero overhead) versus #PEs.

With more PEs each PE's slice of a column is shorter, so zero runs longer
than 15 (which force padding zeros) become rarer and the fraction of useful
work rises — the effect that offsets the worsening load balance in Figure 13.
"""

from __future__ import annotations

from repro.analysis.report import render_series
from repro.analysis.scalability import DEFAULT_PE_COUNTS
from repro.workloads.benchmarks import BENCHMARK_NAMES, get_benchmark

from benchmarks.conftest import save_report


def _real_work_by_pes(builder, benchmarks, pe_counts):
    """real-work fraction per benchmark and PE count (whole-matrix statistic)."""
    results = {}
    for name in benchmarks:
        spec = get_benchmark(name)
        results[name] = {
            num_pes: builder.build(spec, num_pes).real_work_fraction for num_pes in pe_counts
        }
    return results


def test_fig12_padding_zero_overhead(benchmark, builder, results_dir):
    """Regenerate Figure 12."""
    series = benchmark.pedantic(
        _real_work_by_pes,
        args=(builder, BENCHMARK_NAMES, DEFAULT_PE_COUNTS),
        rounds=1,
        iterations=1,
    )
    text = "Real work / total work versus number of PEs:\n"
    text += render_series(series, x_label="# PEs")
    save_report(results_dir, "fig12_padding_zeros", text)

    for name in BENCHMARK_NAMES:
        fractions = [series[name][n] for n in sorted(series[name])]
        # Padding overhead shrinks (real work fraction grows) with more PEs.
        assert all(b >= a - 1e-9 for a, b in zip(fractions, fractions[1:]))
        assert 0.0 < fractions[0] <= 1.0
        # With 256 PEs the local columns are so short that padding largely vanishes.
        assert series[name][256] > 0.9
    # The sparsest layers (VGG-6/7 at 4% density) have the most padding at 1 PE.
    sparsest = min(series[name][1] for name in BENCHMARK_NAMES)
    assert min(series["VGG-6"][1], series["VGG-7"][1]) == sparsest
    assert series["VGG-6"][1] < series["Alex-6"][1] < series["Alex-8"][1]
