"""Figure 11: speedup versus number of PEs (1 to 256).

Runs the ``"fig11_scalability"`` experiment (all nine full-size benchmarks at
FIFO depth 8, PE counts 1-256) and checks the scalability conclusions:
speedup is near-linear for the large layers (Alex/VGG) and saturates for
NT-We, whose 600 rows spread too thinly over many PEs.

Every sweep point is timed by the registry's ``"cycle"`` engine (one engine
per PE count, preparations shared through the runner's session).
"""

from __future__ import annotations

from repro.workloads.benchmarks import BENCHMARK_NAMES

from benchmarks.conftest import write_result


def test_fig11_scalability(benchmark, runner, results_dir):
    """Regenerate Figure 11."""
    result = benchmark.pedantic(
        runner.run, args=("fig11_scalability",), rounds=1, iterations=1
    )
    write_result(results_dir, result)
    sweep = result.legacy()

    for name in BENCHMARK_NAMES:
        speedups = {point.num_pes: point.speedup_vs_1pe for point in sweep[name]}
        # Speedup grows with PE count everywhere.
        ordered = [speedups[n] for n in sorted(speedups)]
        assert all(b >= a - 1e-9 for a, b in zip(ordered, ordered[1:]))
    # Large layers scale nearly linearly to 64 PEs (>= ~60% efficiency).
    for name in ("Alex-6", "Alex-7", "VGG-6", "NT-Wd"):
        speedups = {point.num_pes: point.speedup_vs_1pe for point in sweep[name]}
        assert speedups[64] > 0.6 * 64
    # NT-We saturates: its speedup at 256 PEs is far below linear.
    nt_we = {point.num_pes: point.speedup_vs_1pe for point in sweep["NT-We"]}
    assert nt_we[256] < 0.5 * 256
    alex7 = {point.num_pes: point.speedup_vs_1pe for point in sweep["Alex-7"]}
    assert nt_we[256] < alex7[256]
