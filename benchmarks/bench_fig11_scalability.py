"""Figure 11: speedup versus number of PEs (1 to 256).

Runs the PE-count sweep on all nine full-size benchmarks at FIFO depth 8 and
checks the scalability conclusions: speedup is near-linear for the large
layers (Alex/VGG) and saturates for NT-We, whose 600 rows spread too thinly
over many PEs.

Every sweep point is timed by the registry's ``"cycle"`` engine (one engine
and one prepared workload per PE count; see :func:`repro.analysis.scalability.pe_sweep`).
"""

from __future__ import annotations

import pytest

from repro.analysis.report import render_series
from repro.analysis.scalability import DEFAULT_PE_COUNTS, pe_sweep
from repro.workloads.benchmarks import BENCHMARK_NAMES

from benchmarks.conftest import save_report


@pytest.fixture(scope="module")
def sweep(builder):
    """One PE sweep shared by the three scalability figures' benchmarks."""
    return pe_sweep(DEFAULT_PE_COUNTS, BENCHMARK_NAMES, builder=builder)


def test_fig11_scalability(benchmark, builder, sweep, results_dir):
    """Regenerate Figure 11."""
    result = benchmark.pedantic(
        pe_sweep,
        kwargs={"pe_counts": (1, 64), "benchmarks": ("Alex-7",), "builder": builder},
        rounds=1,
        iterations=1,
    )
    assert result["Alex-7"][-1].speedup_vs_1pe > 1.0

    series = {
        name: {point.num_pes: point.speedup_vs_1pe for point in sweep[name]}
        for name in BENCHMARK_NAMES
    }
    text = "Speedup versus number of PEs (FIFO depth 8):\n"
    text += render_series(series, x_label="# PEs")
    save_report(results_dir, "fig11_scalability", text)

    for name in BENCHMARK_NAMES:
        speedups = {point.num_pes: point.speedup_vs_1pe for point in sweep[name]}
        # Speedup grows with PE count everywhere.
        ordered = [speedups[n] for n in sorted(speedups)]
        assert all(b >= a - 1e-9 for a, b in zip(ordered, ordered[1:]))
    # Large layers scale nearly linearly to 64 PEs (>= ~60% efficiency).
    for name in ("Alex-6", "Alex-7", "VGG-6", "NT-Wd"):
        speedups = {point.num_pes: point.speedup_vs_1pe for point in sweep[name]}
        assert speedups[64] > 0.6 * 64
    # NT-We saturates: its speedup at 256 PEs is far below linear.
    nt_we = {point.num_pes: point.speedup_vs_1pe for point in sweep["NT-We"]}
    assert nt_we[256] < 0.5 * 256
    alex7 = {point.num_pes: point.speedup_vs_1pe for point in sweep["Alex-7"]}
    assert nt_we[256] < alex7[256]
