#!/usr/bin/env python
"""Tracked perf-regression harness for the compression + cycle-model hot paths.

Times the kernels every experiment pays on each workload build — Deep
Compression (pruning, k-means weight sharing, quantisation), interleaved CSC
encoding, cycle-engine layer preparation, the sparsity-pattern entry counts
and the broadcast/FIFO timing recurrence — at **paper scale** (an
AlexNet-fc6-sized 4096x9216 layer at 9% density on 64 PEs, batch 64) and
records the measurements in ``BENCH_hotpaths.json`` at the repository root so
future PRs have a trajectory to compare against.

Usage::

    python benchmarks/perf/bench_perf_hotpaths.py            # paper scale
    python benchmarks/perf/bench_perf_hotpaths.py --quick    # small, CI-sized
    python benchmarks/perf/bench_perf_hotpaths.py --quick --check --no-write

``--check`` compares the fresh measurements against the committed baseline
JSON and exits non-zero if any throughput regressed more than
``--max-slowdown`` (default 2x) — that is the CI gate.  The gate only
compares entries with matching ``backend``.

When the native kernel tier is usable (numba installed, ``REPRO_NATIVE`` not
0), the numpy suite runs with the tier forced off — so the ``backend:
"numpy"`` entries stay honest — and a second suite records ``*_native``
entries (``compress_native``, ``simulate_native``, ...) measured on the JIT
kernels, JIT compilation absorbed by the warmup call.
"""

from __future__ import annotations

import argparse
import asyncio
import shutil
import sys
import tempfile
from itertools import count
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np

from repro import kernels
from repro.compression.csc import CSCMatrix, InterleavedCSC, interleaved_entry_counts
from repro.compression.pipeline import CompressionConfig, DeepCompressor
from repro.compression.quantization import WeightCodebook
from repro.core.config import EIEConfig
from repro.core.cycle_model import (
    layer_work_matrices,
    simulate_layer_cycles,
    simulate_layer_cycles_batch,
)
from repro.engine.session import Session
from repro.experiments import ExperimentRunner
from repro.models.registry import ModelRegistry
from repro.models.spec import ModelSpec
from repro.models.inputs import synthetic_model_inputs
from repro.serve import BatchPolicy, Server, run_open_loop
from repro.store import ArtifactStore
from repro.utils.perfbench import (
    BenchResult,
    check_against_baseline,
    merge_results,
    run_benchmark,
)
from repro.workloads.generator import WorkloadBuilder
from repro.workloads.synthetic import generate_activations, generate_sparse_pattern
from repro.utils.rng import make_rng

BENCH_PATH = REPO_ROOT / "BENCH_hotpaths.json"

#: Paper-scale problem (AlexNet fc6 from Table III) and the CI-sized variant.
#: ``model_scale`` shrinks the whole-network ``model_compress`` entry and
#: ``experiment_scale`` the fig6+fig11 end-to-end entries (None = full size).
SCALES = {
    "paper": dict(
        rows=4096, cols=9216, density=0.09, activation_density=0.35,
        num_pes=64, batch=64, fifo_depth=8, repeats=2,
        model_scale=4.0, experiment_scale=None, experiment_repeats=1,
        serve_scale=16.0, serve_requests=300, serve_rate=600.0,
    ),
    "quick": dict(
        rows=512, cols=1024, density=0.10, activation_density=0.35,
        num_pes=16, batch=16, fifo_depth=8, repeats=3,
        model_scale=16.0, experiment_scale=16.0, experiment_repeats=2,
        serve_scale=32.0, serve_requests=120, serve_rate=800.0,
    ),
}

#: The two-figure end-to-end spec timed serially and on the process pool.
EXPERIMENT_PAIR = ("fig6_speedup", "fig11_scalability")


def _reference_encode_column(column: np.ndarray, max_run: int = 15):
    """The seed's per-element CSC column encoder (kept as the yardstick the
    vectorised kernels are measured against; the property tests pin
    bit-identical output)."""
    values: list[float] = []
    runs: list[int] = []
    zeros_pending = 0
    for element in column:
        if element == 0.0:
            zeros_pending += 1
            continue
        while zeros_pending > max_run:
            values.append(0.0)
            runs.append(max_run)
            zeros_pending -= max_run + 1
        values.append(float(element))
        runs.append(zeros_pending)
        zeros_pending = 0
    return np.asarray(values, dtype=np.float64), np.asarray(runs, dtype=np.int64)


def _reference_encode_dense(dense: np.ndarray) -> None:
    for j in range(dense.shape[1]):
        _reference_encode_column(dense[:, j])


def _dense_matrix(rows: int, cols: int, density: float, seed: int = 7) -> np.ndarray:
    rng = make_rng(seed)
    weights = rng.normal(0.0, 0.1, size=(rows, cols))
    weights[rng.random((rows, cols)) >= density] = 0.0
    if not np.count_nonzero(weights):
        weights[0, 0] = 0.1
    return weights


def run_suite(mode: str) -> list[BenchResult]:
    scale = SCALES[mode]
    rows, cols = scale["rows"], scale["cols"]
    num_pes, batch = scale["num_pes"], scale["batch"]
    repeats = scale["repeats"]
    dense_cells = rows * cols
    params = {
        k: v for k, v in scale.items()
        if k != "repeats" and not k.startswith("serve_")
    }
    results: list[BenchResult] = []

    print(f"[{mode}] {rows}x{cols} @ {scale['density']:.0%}, "
          f"{num_pes} PEs, batch {batch}", flush=True)

    dense = _dense_matrix(rows, cols, scale["density"])

    # 1. Deep Compression end to end (pruning + k-means + quantise + encode).
    compressor = DeepCompressor(CompressionConfig(target_density=scale["density"]))
    results.append(run_benchmark(
        "compress", lambda: compressor.compress(dense, num_pes=num_pes),
        work_items=dense_cells, unit="dense elements", params=params,
        repeats=repeats, warmup=1,
    ))
    print(f"  compress:        {results[-1].seconds:8.4f} s "
          f"({results[-1].throughput:.3e} {results[-1].unit}/s)", flush=True)

    # 2. Interleaved CSC encoding alone (the vectorised whole-matrix path).
    codebook = WeightCodebook.fit(dense[dense != 0.0], rng=0)
    indices = codebook.quantize(dense).astype(np.float64)
    results.append(run_benchmark(
        "csc_encode", lambda: InterleavedCSC.from_dense(indices, num_pes=num_pes),
        work_items=dense_cells, unit="dense elements", params=params,
        repeats=repeats, warmup=1,
    ))
    print(f"  csc_encode:      {results[-1].seconds:8.4f} s "
          f"({results[-1].throughput:.3e} {results[-1].unit}/s)", flush=True)

    # 3. Cycle-engine layer preparation (per-(PE, column) work extraction).
    layer = compressor.compress(dense, num_pes=num_pes)

    def prepare() -> None:
        # Invalidate the prepared-layer caches so the true extraction cost is
        # measured, not the cached re-read.
        layer.storage.invalidate_caches()
        layer_work_matrices(layer)

    results.append(run_benchmark(
        "prepare", prepare,
        work_items=layer.num_stored_entries, unit="stored entries",
        params=params, repeats=repeats, warmup=1,
    ))
    print(f"  prepare:         {results[-1].seconds:8.4f} s "
          f"({results[-1].throughput:.3e} {results[-1].unit}/s)", flush=True)

    # 4. Sparsity-pattern entry counts (the experiment-path preparation that
    #    avoids materialising the encoded streams at full Table III scale).
    pattern = generate_sparse_pattern(rows, cols, scale["density"], make_rng(11))
    results.append(run_benchmark(
        "pattern_counts",
        lambda: interleaved_entry_counts(
            pattern.row_indices, pattern.col_ptr, num_rows=rows, num_pes=num_pes
        ),
        work_items=pattern.nnz, unit="nonzeros", params=params,
        repeats=repeats, warmup=1,
    ))
    print(f"  pattern_counts:  {results[-1].seconds:8.4f} s "
          f"({results[-1].throughput:.3e} {results[-1].unit}/s)", flush=True)

    # 5/6. The broadcast/FIFO timing recurrence, single input and batched.
    counts, _ = interleaved_entry_counts(
        pattern.row_indices, pattern.col_ptr, num_rows=rows, num_pes=num_pes
    )
    activation_rng = make_rng(23)
    single = np.flatnonzero(
        generate_activations(cols, scale["activation_density"], activation_rng)
    )
    work_single = counts[:, single]
    results.append(run_benchmark(
        "simulate",
        lambda: simulate_layer_cycles(work_single, fifo_depth=scale["fifo_depth"]),
        work_items=int(work_single.sum()), unit="entries", params=params,
        repeats=max(repeats, 3), warmup=1,
    ))
    print(f"  simulate:        {results[-1].seconds:8.4f} s "
          f"({results[-1].throughput:.3e} {results[-1].unit}/s)", flush=True)

    # 7. The acceptance yardstick: 1024x1024 @ 10%, vectorised vs the seed
    #    per-element encoder (paper mode only — the reference loop is slow).
    if mode == "paper":
        yard = _dense_matrix(1024, 1024, 0.10, seed=42)
        yard_params = {"rows": 1024, "cols": 1024, "density": 0.10}
        results.append(run_benchmark(
            "csc_encode_1024", lambda: CSCMatrix.from_dense(yard),
            work_items=yard.size, unit="dense elements", params=yard_params,
            repeats=5, warmup=1,
        ))
        results.append(run_benchmark(
            "csc_encode_1024_reference", lambda: _reference_encode_dense(yard),
            work_items=yard.size, unit="dense elements", params=yard_params,
            repeats=2, warmup=0,
        ))
        speedup = results[-2].throughput / results[-1].throughput
        print(f"  csc_encode_1024: {results[-2].seconds:8.4f} s vs reference "
              f"{results[-1].seconds:8.4f} s -> {speedup:.1f}x", flush=True)

    works = []
    for _ in range(batch):
        nonzero = np.flatnonzero(
            generate_activations(cols, scale["activation_density"], activation_rng)
        )
        works.append(counts[:, nonzero])
    results.append(run_benchmark(
        "simulate_batch",
        lambda: simulate_layer_cycles_batch(works, fifo_depth=scale["fifo_depth"]),
        work_items=int(sum(int(w.sum()) for w in works)), unit="entries",
        params=params, repeats=repeats, warmup=1,
    ))
    print(f"  simulate_batch:  {results[-1].seconds:8.4f} s "
          f"({results[-1].throughput:.3e} {results[-1].unit}/s)", flush=True)

    # 8/9. Artifact-store cold and warm compress through the session layer.
    #    Cold = fingerprint + full Deep Compression + store publish into a
    #    fresh store; warm = a fresh process-like session hitting the
    #    populated store (fingerprint + load + validate) — the once-per-
    #    machine path every later run, CLI invocation and worker pays.
    store_root = Path(tempfile.mkdtemp(prefix="repro-bench-store-"))
    compression = CompressionConfig(target_density=scale["density"])
    cold_ids = count()

    def compress_cold() -> None:
        root = store_root / f"cold-{next(cold_ids)}"
        session = Session(compression, store=ArtifactStore(root))
        session.compress(dense, num_pes=num_pes)

    results.append(run_benchmark(
        "compress_cold", compress_cold,
        work_items=dense_cells, unit="dense elements", params=params,
        repeats=repeats, warmup=1,
    ))
    print(f"  compress_cold:   {results[-1].seconds:8.4f} s "
          f"({results[-1].throughput:.3e} {results[-1].unit}/s)", flush=True)

    warm_root = store_root / "warm"
    Session(compression, store=ArtifactStore(warm_root)).compress(dense, num_pes=num_pes)

    def compress_warm() -> None:
        session = Session(compression, store=ArtifactStore(warm_root))
        session.compress(dense, num_pes=num_pes)

    results.append(run_benchmark(
        "compress_warm", compress_warm,
        work_items=dense_cells, unit="dense elements", params=params,
        repeats=max(repeats, 3), warmup=1,
    ))
    warm_speedup = results[-1].throughput / results[-2].throughput
    print(f"  compress_warm:   {results[-1].seconds:8.4f} s "
          f"({results[-1].throughput:.3e} {results[-1].unit}/s, "
          f"{warm_speedup:.1f}x over cold)", flush=True)
    shutil.rmtree(store_root, ignore_errors=True)

    # 10. Whole-model compression (every node through Session.compress_model).
    model = ModelRegistry.build(
        ModelSpec(model="alexnet_fc", scale=scale["model_scale"])
    )
    model_params = {**params, "model": "alexnet_fc", "model_scale": scale["model_scale"]}

    def model_compress() -> None:
        Session(CompressionConfig()).compress_model(model, num_pes=num_pes)

    results.append(run_benchmark(
        "model_compress", model_compress,
        work_items=model.num_parameters, unit="parameters",
        params=model_params, repeats=repeats, warmup=1,
    ))
    print(f"  model_compress:  {results[-1].seconds:8.4f} s "
          f"({results[-1].throughput:.3e} {results[-1].unit}/s)", flush=True)

    # 11/12. End-to-end fig6+fig11 experiment pair, serial vs process pool.
    #    Each call builds a fresh runner/builder so every run pays its own
    #    workload construction, exactly like a fresh CLI invocation.
    experiment_scale = scale["experiment_scale"]
    experiment_repeats = scale["experiment_repeats"]

    def run_experiment_pair(executor: str, jobs: int) -> None:
        runner = ExperimentRunner(
            builder=WorkloadBuilder(), executor=executor, jobs=jobs
        )
        for name in EXPERIMENT_PAIR:
            runner.run(name, scale=experiment_scale)

    experiment_params = {
        **params, "experiments": list(EXPERIMENT_PAIR), "scale": experiment_scale,
    }
    results.append(run_benchmark(
        "experiment_fig6_fig11_serial",
        lambda: run_experiment_pair("serial", 1),
        work_items=1, unit="runs", params=experiment_params,
        repeats=experiment_repeats, warmup=0,
    ))
    print(f"  experiment (serial):      {results[-1].seconds:8.4f} s", flush=True)
    results.append(run_benchmark(
        "experiment_fig6_fig11_processes4",
        lambda: run_experiment_pair("processes", 4),
        work_items=1, unit="runs",
        params={**experiment_params, "jobs": 4},
        repeats=experiment_repeats, warmup=0,
    ))
    serial_seconds = results[-2].seconds
    print(f"  experiment (processes-4): {results[-1].seconds:8.4f} s "
          f"({serial_seconds / results[-1].seconds:.2f}x vs serial)", flush=True)

    # 13-15. The serving layer under open-loop load: sustained throughput of
    #    the dynamically batched daemon path plus its p50/p99 request latency
    #    (queue wait + batched dispatch, as a client would measure it).  One
    #    warmup run absorbs startup compression; the percentiles are recorded
    #    as seconds-per-request so the throughput gate catches tail blowups.
    serve_model = ModelRegistry.build(
        ModelSpec(model="neuraltalk_lstm", scale=scale["serve_scale"])
    )
    serve_inputs = synthetic_model_inputs(
        serve_model, batch=scale["serve_requests"], seed=29
    )
    serve_config = EIEConfig(num_pes=num_pes, fifo_depth=scale["fifo_depth"])
    serve_params = {
        **params,
        "model": "neuraltalk_lstm", "serve_scale": scale["serve_scale"],
        "requests": scale["serve_requests"], "rate_rps": scale["serve_rate"],
        "max_batch": 16, "max_wait_us": 1000.0,
    }

    async def serve_open_loop():
        async with Server(
            [serve_model],
            config=serve_config,
            policy=BatchPolicy(max_batch=16, max_wait_us=1000.0),
        ) as server:
            return await run_open_loop(
                lambda vector: server.submit(serve_model.name, vector),
                serve_inputs,
                rate_rps=scale["serve_rate"],
                seed=31,
            )

    asyncio.run(serve_open_loop())  # warmup: compression + prepared caches
    report = asyncio.run(serve_open_loop())
    if report.completed != scale["serve_requests"]:
        print(f"  serve: WARNING only {report.completed}/{scale['serve_requests']} "
              f"requests completed ({report.rejected} rejected, "
              f"{report.errors} errors)", flush=True)
    results.append(BenchResult(
        "serve_throughput", seconds=report.duration_s, repeats=1,
        work_items=float(report.completed), unit="requests",
        params=serve_params,
    ))
    results.append(BenchResult(
        "serve_p50", seconds=report.p50_ms / 1e3, repeats=report.completed,
        work_items=1.0, unit="requests", params=serve_params,
    ))
    results.append(BenchResult(
        "serve_p99", seconds=report.p99_ms / 1e3, repeats=report.completed,
        work_items=1.0, unit="requests", params=serve_params,
    ))
    print(f"  serve:           {report.throughput_rps:8.1f} req/s at "
          f"{scale['serve_rate']:.0f} rps offered "
          f"(p50 {report.p50_ms:.2f} ms, p99 {report.p99_ms:.2f} ms, "
          f"mean batch {report.mean_batch:.1f})", flush=True)
    return results


def run_native_suite(mode: str) -> list[BenchResult]:
    """The hot paths again, on the JIT kernel tier (``backend="native"``).

    Rebuilds the same problems as :func:`run_suite` (same seeds, same data)
    and measures the four kernel-backed paths.  The ``warmup=1`` call of each
    benchmark absorbs the one-off JIT compilation, so ``seconds`` reflects
    steady-state throughput — which is what the ≥5x acceptance target and
    the regression gate are about.
    """
    scale = SCALES[mode]
    rows, cols = scale["rows"], scale["cols"]
    num_pes, batch = scale["num_pes"], scale["batch"]
    repeats = scale["repeats"]
    dense_cells = rows * cols
    params = {k: v for k, v in scale.items() if k != "repeats"}
    results: list[BenchResult] = []

    print(f"[{mode}] native tier (numba {kernels.status()['numba']})", flush=True)
    dense = _dense_matrix(rows, cols, scale["density"])

    compressor = DeepCompressor(CompressionConfig(target_density=scale["density"]))
    results.append(run_benchmark(
        "compress_native", lambda: compressor.compress(dense, num_pes=num_pes),
        work_items=dense_cells, unit="dense elements", params=params,
        repeats=repeats, warmup=1, backend="native",
    ))
    print(f"  compress_native:       {results[-1].seconds:8.4f} s "
          f"({results[-1].throughput:.3e} {results[-1].unit}/s)", flush=True)

    codebook = WeightCodebook.fit(dense[dense != 0.0], rng=0)
    indices = codebook.quantize(dense).astype(np.float64)
    results.append(run_benchmark(
        "csc_encode_native", lambda: InterleavedCSC.from_dense(indices, num_pes=num_pes),
        work_items=dense_cells, unit="dense elements", params=params,
        repeats=repeats, warmup=1, backend="native",
    ))
    print(f"  csc_encode_native:     {results[-1].seconds:8.4f} s "
          f"({results[-1].throughput:.3e} {results[-1].unit}/s)", flush=True)

    pattern = generate_sparse_pattern(rows, cols, scale["density"], make_rng(11))
    results.append(run_benchmark(
        "pattern_counts_native",
        lambda: interleaved_entry_counts(
            pattern.row_indices, pattern.col_ptr, num_rows=rows, num_pes=num_pes
        ),
        work_items=pattern.nnz, unit="nonzeros", params=params,
        repeats=repeats, warmup=1, backend="native",
    ))
    print(f"  pattern_counts_native: {results[-1].seconds:8.4f} s "
          f"({results[-1].throughput:.3e} {results[-1].unit}/s)", flush=True)

    counts, _ = interleaved_entry_counts(
        pattern.row_indices, pattern.col_ptr, num_rows=rows, num_pes=num_pes
    )
    activation_rng = make_rng(23)
    single = np.flatnonzero(
        generate_activations(cols, scale["activation_density"], activation_rng)
    )
    work_single = counts[:, single]
    results.append(run_benchmark(
        "simulate_native",
        lambda: simulate_layer_cycles(
            work_single, fifo_depth=scale["fifo_depth"], backend="native"
        ),
        work_items=int(work_single.sum()), unit="entries", params=params,
        repeats=max(repeats, 3), warmup=1, backend="native",
    ))
    print(f"  simulate_native:       {results[-1].seconds:8.4f} s "
          f"({results[-1].throughput:.3e} {results[-1].unit}/s)", flush=True)

    works = []
    for _ in range(batch):
        nonzero = np.flatnonzero(
            generate_activations(cols, scale["activation_density"], activation_rng)
        )
        works.append(counts[:, nonzero])
    results.append(run_benchmark(
        "simulate_batch_native",
        lambda: simulate_layer_cycles_batch(
            works, fifo_depth=scale["fifo_depth"], backend="native"
        ),
        work_items=int(sum(int(w.sum()) for w in works)), unit="entries",
        params=params, repeats=repeats, warmup=1, backend="native",
    ))
    print(f"  simulate_batch_native: {results[-1].seconds:8.4f} s "
          f"({results[-1].throughput:.3e} {results[-1].unit}/s)", flush=True)
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="run the small CI-sized problems instead of paper scale")
    parser.add_argument("--check", action="store_true",
                        help="fail if throughput regressed vs the baseline JSON")
    parser.add_argument("--baseline", type=Path, default=BENCH_PATH,
                        help="baseline JSON for --check (default: committed file)")
    parser.add_argument("--output", type=Path, default=BENCH_PATH,
                        help="where to record the measurements")
    parser.add_argument("--no-write", action="store_true",
                        help="do not update the output JSON")
    parser.add_argument("--max-slowdown", type=float, default=2.0,
                        help="throughput regression factor tolerated by --check")
    args = parser.parse_args(argv)

    mode = "quick" if args.quick else "paper"
    if kernels.available():
        # Keep the backend:"numpy" entries honest: the library fast paths
        # would otherwise silently pick the JIT kernels up.
        with kernels.disabled():
            results = run_suite(mode)
    else:
        results = run_suite(mode)

    if kernels.use_native():
        results.extend(run_native_suite(mode))
    else:
        status = kernels.status()
        if status["numba"] is None:
            reason = "numba not installed"
        elif not status["available"]:
            reason = "kernel self-test failed"
        else:
            reason = f"disabled via {kernels.ENV_VAR}=0"
        print(f"native tier: {reason} -- *_native entries skipped", flush=True)

    if not args.no_write:
        merge_results(args.output, results, mode)
        print(f"recorded {len(results)} entries under '{mode}/' in {args.output}")

    if args.check:
        failures = check_against_baseline(
            results, args.baseline, mode, max_slowdown=args.max_slowdown
        )
        if failures:
            for failure in failures:
                print(f"PERF REGRESSION: {failure}", file=sys.stderr)
            return 1
        print(f"perf check OK ({len(results)} entries within "
              f"{args.max_slowdown:.1f}x of baseline)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
