"""Table III: the nine benchmark layers and their sparsity statistics.

Also verifies, on the generated full-scale synthetic workloads, that the
realised weight densities and activation densities match the specification
(what the paper's Weight%/Act% columns report for the pruned networks).
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.workloads.benchmarks import BENCHMARK_NAMES, get_benchmark

from benchmarks.conftest import write_result


def test_table3_benchmark_statistics(benchmark, runner, builder, results_dir):
    """Regenerate Table III and validate the synthetic workload statistics."""
    result = benchmark.pedantic(runner.run, args=("table3_benchmarks",), rounds=1, iterations=1)
    realised = []
    for name in BENCHMARK_NAMES:
        spec = get_benchmark(name)
        pattern = builder.pattern(spec)
        activations = builder.activations(spec)
        realised.append(
            [
                name,
                f"{spec.input_size} x {spec.output_size}",
                spec.weight_density,
                pattern.density,
                spec.activation_density,
                float((activations != 0).mean()),
            ]
        )
        assert abs(pattern.density - spec.weight_density) < 0.01
        assert abs(float((activations != 0).mean()) - spec.activation_density) < 0.03
    extra = "Realised synthetic workload densities:\n"
    extra += format_table(
        ["Layer", "Size", "Weight% (spec)", "Weight% (realised)", "Act% (spec)", "Act% (realised)"],
        realised,
    )
    write_result(results_dir, result, extra=extra)
