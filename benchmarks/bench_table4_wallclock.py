"""Table IV: per-frame wall-clock time of CPU / GPU / mGPU / EIE.

Regenerates every row of Table IV (dense and sparse kernels at batch 1 and
64, plus EIE's theoretical and actual time) through the
``"table4_wallclock"`` experiment on the full-size Table III layers and
compares the shape against the paper's measured numbers: EIE is within a
small factor of its published latency, and the batching/sparsity crossovers
(sparse wins at batch 1, loses at batch 64) are preserved.
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.baselines.reference import PAPER_TABLE_IV_US
from repro.workloads.benchmarks import BENCHMARK_NAMES

from benchmarks.conftest import write_result


def test_table4_wall_clock_times(benchmark, runner, results_dir):
    """Regenerate Table IV (all platforms, all nine benchmarks)."""
    result = benchmark.pedantic(runner.run, args=("table4_wallclock",), rounds=1, iterations=1)
    rows = result.records

    eie_actual = next(r for r in rows if r["platform"] == "EIE" and r["kernel"] == "actual")
    eie_theoretical = next(
        r for r in rows if r["platform"] == "EIE" and r["kernel"] == "theoretical"
    )
    paper_actual = PAPER_TABLE_IV_US["EIE"][(1, "actual")]
    comparison = [
        [name, eie_theoretical[name], eie_actual[name], paper_actual[name],
         eie_actual[name] / paper_actual[name]]
        for name in BENCHMARK_NAMES
    ]
    extra = "EIE versus the paper's published actual time:\n"
    extra += format_table(
        ["Layer", "ours theoretical (us)", "ours actual (us)", "paper actual (us)", "ratio"],
        comparison,
    )
    write_result(results_dir, result, extra=extra)

    for name in BENCHMARK_NAMES:
        # Shape check: our EIE latency lands within ~2x of the published value
        # and the actual time is never better than the theoretical bound.
        assert 0.4 < eie_actual[name] / paper_actual[name] < 2.5
        assert eie_actual[name] >= eie_theoretical[name] - 1e-9

    cpu_rows = {(r["batch"], r["kernel"]): r for r in rows if r["platform"] == "CPU"}
    # Crossover: compression helps the CPU at batch 1 but hurts at batch 64.
    assert cpu_rows[(1, "sparse")]["Alex-6"] < cpu_rows[(1, "dense")]["Alex-6"]
    assert cpu_rows[(64, "sparse")]["Alex-6"] > cpu_rows[(64, "dense")]["Alex-6"]
