"""Figure 13: load-balance efficiency versus number of PEs at FIFO depth 8.

More PEs mean fewer non-zeros per PE per column and therefore more relative
variance between PEs, so the load-balance efficiency degrades with PE count —
the counterpart of Figure 12's improving padding overhead.

Every sweep point is timed by the registry's ``"cycle"`` engine (see
:func:`repro.analysis.scalability.pe_sweep`).
"""

from __future__ import annotations

import pytest

from repro.analysis.report import render_series
from repro.analysis.scalability import DEFAULT_PE_COUNTS, pe_sweep
from repro.workloads.benchmarks import BENCHMARK_NAMES

from benchmarks.conftest import save_report


def test_fig13_load_balance_vs_pes(benchmark, builder, results_dir):
    """Regenerate Figure 13."""
    sweep = benchmark.pedantic(
        pe_sweep,
        kwargs={"pe_counts": DEFAULT_PE_COUNTS, "benchmarks": BENCHMARK_NAMES, "builder": builder},
        rounds=1,
        iterations=1,
    )
    series = {
        name: {point.num_pes: point.load_balance_efficiency for point in sweep[name]}
        for name in BENCHMARK_NAMES
    }
    text = "Load-balance efficiency versus number of PEs (FIFO depth 8):\n"
    text += render_series(series, x_label="# PEs")
    save_report(results_dir, "fig13_load_balance", text)

    for name in BENCHMARK_NAMES:
        efficiencies = series[name]
        # A single PE is perfectly balanced by definition.
        assert efficiencies[1] == pytest.approx(1.0, abs=0.01)
        # Load balance at 256 PEs is worse than at 1 PE for every benchmark.
        assert efficiencies[256] < efficiencies[1]
        assert 0.0 < efficiencies[256] <= 1.0
    # NT-We (600 rows) suffers the most at high PE counts.
    assert series["NT-We"][256] == min(series[name][256] for name in BENCHMARK_NAMES)
