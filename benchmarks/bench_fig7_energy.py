"""Figure 7: energy efficiency over CPU dense (batch 1).

Regenerates the energy-efficiency chart through the
``"fig7_energy_efficiency"`` experiment of :mod:`repro.experiments` and
checks the headline claims: EIE is several orders of magnitude more energy
efficient than CPU/GPU/mGPU, and compression alone (on general-purpose
hardware) only buys single-digit factors.
"""

from __future__ import annotations

from repro.analysis.speedup import GEOMEAN_KEY
from repro.baselines.reference import PAPER_ENERGY_EFFICIENCY_GEOMEAN
from repro.workloads.benchmarks import BENCHMARK_NAMES

from benchmarks.conftest import write_result


def test_fig7_energy_efficiency(benchmark, runner, results_dir):
    """Regenerate Figure 7."""
    result = benchmark.pedantic(
        runner.run, args=("fig7_energy_efficiency",), rounds=1, iterations=1
    )
    table = result.legacy()
    extra = (
        f"Geometric-mean EIE energy efficiency: ours = {table[GEOMEAN_KEY]['EIE']:.0f}x, "
        f"paper = {PAPER_ENERGY_EFFICIENCY_GEOMEAN['EIE']:.0f}x"
    )
    write_result(results_dir, result, extra=extra)

    geomean = table[GEOMEAN_KEY]
    assert geomean["EIE"] > 5_000.0            # several orders of magnitude
    assert geomean["EIE"] > 100 * geomean["GPU Compressed"]
    assert geomean["CPU Compressed"] < 20.0
    for name in BENCHMARK_NAMES:
        assert table[name]["EIE"] == max(table[name].values())
