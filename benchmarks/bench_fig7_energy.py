"""Figure 7: energy efficiency over CPU dense (batch 1).

Regenerates the energy-efficiency chart and checks the headline claims: EIE
is several orders of magnitude more energy efficient than CPU/GPU/mGPU, and
compression alone (on general-purpose hardware) only buys single-digit
factors.
"""

from __future__ import annotations

from repro.analysis.energy_efficiency import energy_efficiency_table
from repro.analysis.report import render_series
from repro.analysis.speedup import GEOMEAN_KEY, SPEEDUP_CONFIGS
from repro.baselines.reference import PAPER_ENERGY_EFFICIENCY_GEOMEAN
from repro.workloads.benchmarks import BENCHMARK_NAMES

from benchmarks.conftest import save_report


def test_fig7_energy_efficiency(benchmark, builder, eie_config, results_dir):
    """Regenerate Figure 7."""
    table = benchmark.pedantic(
        energy_efficiency_table,
        kwargs={"builder": builder, "eie_config": eie_config},
        rounds=1,
        iterations=1,
    )
    series = {config: {name: table[name][config] for name in table} for config in SPEEDUP_CONFIGS}
    text = "Energy efficiency over CPU dense (batch 1):\n"
    text += render_series(series, x_label="Benchmark")
    text += (
        f"\n\nGeometric-mean EIE energy efficiency: ours = {table[GEOMEAN_KEY]['EIE']:.0f}x, "
        f"paper = {PAPER_ENERGY_EFFICIENCY_GEOMEAN['EIE']:.0f}x"
    )
    save_report(results_dir, "fig7_energy_efficiency", text)

    geomean = table[GEOMEAN_KEY]
    assert geomean["EIE"] > 5_000.0            # several orders of magnitude
    assert geomean["EIE"] > 100 * geomean["GPU Compressed"]
    assert geomean["CPU Compressed"] < 20.0
    for name in BENCHMARK_NAMES:
        assert table[name]["EIE"] == max(table[name].values())
