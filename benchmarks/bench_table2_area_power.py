"""Table II: implementation results of one EIE PE (power/area breakdown).

Regenerates the per-component and per-module breakdown of one PE at 45 nm and
the derived 64-PE chip totals (40.8 mm^2 / ~0.59 W).
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.analysis.tables import table2_rows
from repro.hardware.area import chip_area_mm2, chip_power_w, num_lnzd_units

from benchmarks.conftest import save_report


def test_table2_pe_breakdown(benchmark, results_dir):
    """Regenerate Table II plus the chip-level totals quoted in Section VI."""
    rows = benchmark.pedantic(table2_rows, rounds=1, iterations=1)
    text = format_table(
        ["Name", "Group", "Power (mW)", "Power (%)", "Area (um2)", "Area (%)"],
        [
            [row["name"], row.get("group", ""), row["power_mw"], row["power_pct"],
             row["area_um2"], row["area_pct"]]
            for row in rows
        ],
    )
    text += "\n\n64-PE chip: area = {:.1f} mm^2, power = {:.3f} W, LNZD units = {}".format(
        chip_area_mm2(64), chip_power_w(64), num_lnzd_units(64)
    )
    save_report(results_dir, "table2_area_power", text)
    assert abs(chip_area_mm2(64) - 40.8) / 40.8 < 0.05
    assert abs(chip_power_w(64) - 0.59) / 0.59 < 0.05
    assert num_lnzd_units(64) == 21
