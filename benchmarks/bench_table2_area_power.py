"""Table II: implementation results of one EIE PE (power/area breakdown).

Regenerates the per-component and per-module breakdown of one PE at 45 nm
through the ``"table2_area_power"`` experiment, plus the derived 64-PE chip
totals (40.8 mm^2 / ~0.59 W).
"""

from __future__ import annotations

from repro.hardware.area import chip_area_mm2, chip_power_w, num_lnzd_units

from benchmarks.conftest import write_result


def test_table2_pe_breakdown(benchmark, runner, results_dir):
    """Regenerate Table II plus the chip-level totals quoted in Section VI."""
    result = benchmark.pedantic(runner.run, args=("table2_area_power",), rounds=1, iterations=1)
    extra = "64-PE chip: area = {:.1f} mm^2, power = {:.3f} W, LNZD units = {}".format(
        chip_area_mm2(64), chip_power_w(64), num_lnzd_units(64)
    )
    write_result(results_dir, result, extra=extra)
    assert abs(chip_area_mm2(64) - 40.8) / 40.8 < 0.05
    assert abs(chip_power_w(64) - 0.59) / 0.59 < 0.05
    assert num_lnzd_units(64) == 21
