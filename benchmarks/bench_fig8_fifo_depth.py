"""Figure 8: load-balance efficiency versus activation FIFO depth.

Sweeps the queue depth from 1 to 256 on all nine full-size benchmarks at 64
PEs through the ``"fig8_fifo_depth"`` experiment and checks the paper's
conclusions: efficiency improves monotonically with depth, a large fraction
of cycles are idle at depth 1, and the marginal gain beyond depth 8 is small
(which is why the paper picks 8).
"""

from __future__ import annotations

from repro.workloads.benchmarks import BENCHMARK_NAMES

from benchmarks.conftest import write_result


def test_fig8_fifo_depth_sweep(benchmark, runner, results_dir):
    """Regenerate Figure 8."""
    result = benchmark.pedantic(
        runner.run, args=("fig8_fifo_depth",), rounds=1, iterations=1
    )
    write_result(results_dir, result)
    sweep = result.legacy()

    for name in BENCHMARK_NAMES:
        per_depth = sweep[name]
        depths = sorted(per_depth)
        values = [per_depth[d] for d in depths]
        # Monotone improvement with diminishing returns beyond depth 8.
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))
        assert per_depth[256] - per_depth[8] <= (per_depth[8] - per_depth[1]) + 0.05
    # At depth 1 a substantial fraction of cycles are idle on the large layers.
    assert sweep["Alex-6"][1] < 0.85
    # NT-We has the worst load balance (only 600 rows over 64 PEs).
    assert sweep["NT-We"][8] == min(sweep[name][8] for name in BENCHMARK_NAMES)
