"""Ablations of EIE's design choices (beyond the paper's published figures).

DESIGN.md calls out three decisions whose sensitivity is worth quantifying on
the full-size benchmarks:

* the 4-bit relative index (padding zeros versus index storage);
* the 16-entry (4-bit) shared-weight codebook (reconstruction error versus
  weight storage);
* the row-interleaved workload partitioning versus the column and 2-D block
  alternatives of Section VII-A.
"""

from __future__ import annotations

from repro.analysis.ablation import (
    codebook_bits_ablation,
    index_width_ablation,
    partitioning_ablation,
)
from repro.analysis.report import format_table

from benchmarks.conftest import save_report


def test_ablation_index_width(benchmark, builder, results_dir):
    """4-bit relative index: padding versus storage on Alex-7 (64 PEs)."""
    points = benchmark.pedantic(
        index_width_ablation,
        kwargs={"benchmark": "Alex-7", "num_pes": 64, "builder": builder},
        rounds=1,
        iterations=1,
    )
    text = "Relative-index width ablation (Alex-7, 64 PEs):\n"
    text += format_table(
        ["Index bits", "True non-zeros", "Padding zeros", "Padding fraction",
         "Storage bits", "Bits per non-zero"],
        [[p.index_bits, p.true_nonzeros, p.padding_zeros, p.padding_fraction,
          p.storage_bits, p.bits_per_nonzero] for p in points],
    )
    save_report(results_dir, "ablation_index_width", text)

    by_bits = {point.index_bits: point for point in points}
    paddings = [point.padding_zeros for point in points]
    assert all(b <= a for a, b in zip(paddings, paddings[1:]))
    # The paper's 4-bit choice is on the storage-optimal plateau.
    best_bits = min(by_bits, key=lambda bits: by_bits[bits].storage_bits)
    assert by_bits[4].storage_bits <= 1.05 * by_bits[best_bits].storage_bits


def test_ablation_codebook_bits(benchmark, results_dir):
    """16-entry codebook: reconstruction error versus weight bits."""
    points = benchmark.pedantic(
        codebook_bits_ablation, kwargs={"num_weights": 50_000}, rounds=1, iterations=1
    )
    text = "Shared-weight codebook ablation (Gaussian weight population):\n"
    text += format_table(
        ["Weight bits", "Entries", "RMS error", "Relative RMS error"],
        [[p.weight_bits, p.codebook_entries, p.rms_error, p.relative_rms_error] for p in points],
    )
    save_report(results_dir, "ablation_codebook_bits", text)

    errors = [point.rms_error for point in points]
    assert all(b <= a + 1e-12 for a, b in zip(errors, errors[1:]))
    by_bits = {point.weight_bits: point for point in points}
    # Each extra bit roughly halves the error; 4 bits is already ~10% relative.
    assert by_bits[4].relative_rms_error < 0.2
    assert by_bits[2].rms_error > 2.0 * by_bits[4].rms_error


def test_ablation_partitioning(benchmark, builder, results_dir):
    """Section VII-A: the three workload-partitioning schemes on Alex-7."""
    results = benchmark.pedantic(
        partitioning_ablation,
        kwargs={"benchmark": "Alex-7", "num_pes": 64, "builder": builder},
        rounds=1,
        iterations=1,
    )
    text = "Workload partitioning ablation (Alex-7, 64 PEs):\n"
    text += format_table(
        ["Strategy", "Total cycles", "Compute cycles", "Comm. cycles",
         "Broadcast words", "Reduction words", "Load balance", "Idle PEs"],
        [[name, r.total_cycles, r.compute_cycles, r.communication_cycles,
          r.broadcast_words, r.reduction_words, r.load_balance_efficiency, r.idle_pes]
         for name, r in results.items()],
    )
    save_report(results_dir, "ablation_partitioning", text)

    row = results["row-interleaved"]
    column = results["column"]
    block = results["block-2d"]
    # The paper's choice: no reduction traffic, no idle PEs, high load balance,
    # and fewer total cycles than the column scheme (which pays a full-length
    # cross-PE reduction).  The 2-D scheme is modelled without the CSC padding
    # overhead, so only its communication structure is compared.
    assert row.reduction_words == 0
    assert row.idle_pes == 0
    assert row.total_cycles <= column.total_cycles
    assert row.load_balance_efficiency >= 0.9
    assert 0 < block.broadcast_words < row.broadcast_words
    assert 0 < block.reduction_words < column.reduction_words
