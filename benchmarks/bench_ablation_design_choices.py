"""Ablations of EIE's design choices (beyond the paper's published figures).

DESIGN.md calls out three decisions whose sensitivity is worth quantifying on
the full-size benchmarks, each a registered experiment of
:mod:`repro.experiments`:

* ``ablation_index_width`` — the 4-bit relative index (padding zeros versus
  index storage);
* ``ablation_codebook_bits`` — the 16-entry (4-bit) shared-weight codebook
  (reconstruction error versus weight storage);
* ``ablation_partitioning`` — the row-interleaved workload partitioning
  versus the column and 2-D block alternatives of Section VII-A.
"""

from __future__ import annotations

from benchmarks.conftest import write_result


def test_ablation_index_width(benchmark, runner, results_dir):
    """4-bit relative index: padding versus storage on Alex-7 (64 PEs)."""
    result = benchmark.pedantic(
        runner.run,
        args=("ablation_index_width",),
        kwargs={"workloads": ("Alex-7",), "config": {"num_pes": 64}},
        rounds=1,
        iterations=1,
    )
    write_result(results_dir, result)
    points = result.legacy()

    by_bits = {point.index_bits: point for point in points}
    paddings = [point.padding_zeros for point in points]
    assert all(b <= a for a, b in zip(paddings, paddings[1:]))
    # The paper's 4-bit choice is on the storage-optimal plateau.
    best_bits = min(by_bits, key=lambda bits: by_bits[bits].storage_bits)
    assert by_bits[4].storage_bits <= 1.05 * by_bits[best_bits].storage_bits


def test_ablation_codebook_bits(benchmark, runner, results_dir):
    """16-entry codebook: reconstruction error versus weight bits."""
    result = benchmark.pedantic(
        runner.run,
        args=("ablation_codebook_bits",),
        kwargs={"params": {"num_weights": 50_000}},
        rounds=1,
        iterations=1,
    )
    write_result(results_dir, result)
    points = result.legacy()

    errors = [point.rms_error for point in points]
    assert all(b <= a + 1e-12 for a, b in zip(errors, errors[1:]))
    by_bits = {point.weight_bits: point for point in points}
    # Each extra bit roughly halves the error; 4 bits is already ~10% relative.
    assert by_bits[4].relative_rms_error < 0.2
    assert by_bits[2].rms_error > 2.0 * by_bits[4].rms_error


def test_ablation_partitioning(benchmark, runner, results_dir):
    """Section VII-A: the three workload-partitioning schemes on Alex-7."""
    result = benchmark.pedantic(
        runner.run,
        args=("ablation_partitioning",),
        kwargs={"workloads": ("Alex-7",), "config": {"num_pes": 64}},
        rounds=1,
        iterations=1,
    )
    write_result(results_dir, result)
    results = {record["strategy"]: record for record in result.records}

    row = results["row-interleaved"]
    column = results["column"]
    block = results["block-2d"]
    # The paper's choice: no reduction traffic, no idle PEs, high load balance,
    # and fewer total cycles than the column scheme (which pays a full-length
    # cross-PE reduction).  The 2-D scheme is modelled without the CSC padding
    # overhead, so only its communication structure is compared.
    assert row["reduction_words"] == 0
    assert row["idle_pes"] == 0
    assert row["total_cycles"] <= column["total_cycles"]
    assert row["load_balance_efficiency"] >= 0.9
    assert 0 < block["broadcast_words"] < row["broadcast_words"]
    assert 0 < block["reduction_words"] < column["reduction_words"]
