"""Figure 6: speedup over CPU dense (batch 1) for all seven configurations.

Regenerates the nine-benchmark x seven-configuration speedup chart plus the
geometric mean through the ``"fig6_speedup"`` experiment of
:mod:`repro.experiments`, and checks the paper's qualitative claims: EIE wins
on every benchmark, the geometric-mean speedup over the CPU is in the
hundreds, the GPU sits in between, and compression alone (without EIE) buys
only a few x.
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.analysis.speedup import GEOMEAN_KEY
from repro.baselines.reference import PAPER_EIE_SPEEDUPS, PAPER_SPEEDUP_GEOMEAN
from repro.workloads.benchmarks import BENCHMARK_NAMES

from benchmarks.conftest import write_result


def test_fig6_speedup_over_cpu(benchmark, runner, results_dir):
    """Regenerate Figure 6."""
    result = benchmark.pedantic(runner.run, args=("fig6_speedup",), rounds=1, iterations=1)
    table = result.legacy()
    extra = "EIE speedups versus the paper (Figure 6, last group):\n"
    extra += format_table(
        ["Benchmark", "ours", "paper", "ratio"],
        [
            [name, table[name]["EIE"], PAPER_EIE_SPEEDUPS[name],
             table[name]["EIE"] / PAPER_EIE_SPEEDUPS[name]]
            for name in BENCHMARK_NAMES
        ],
    )
    extra += f"\n\nGeometric-mean EIE speedup: ours = {table[GEOMEAN_KEY]['EIE']:.0f}x, " \
             f"paper = {PAPER_SPEEDUP_GEOMEAN['EIE']:.0f}x"
    write_result(results_dir, result, extra=extra)

    geomean = table[GEOMEAN_KEY]
    # Shape checks, not exact matches.
    assert geomean["EIE"] > 100.0
    assert geomean["EIE"] > geomean["GPU Compressed"] > geomean["GPU Dense"]
    assert geomean["CPU Compressed"] < 10.0           # compression alone buys only a few x
    assert geomean["mGPU Dense"] < 2.0                # the mobile GPU is no faster than the CPU
    for name in BENCHMARK_NAMES:
        assert table[name]["EIE"] == max(table[name].values())
