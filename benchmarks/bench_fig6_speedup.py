"""Figure 6: speedup over CPU dense (batch 1) for all seven configurations.

Regenerates the nine-benchmark x seven-configuration speedup chart plus the
geometric mean, and checks the paper's qualitative claims: EIE wins on every
benchmark, the geometric-mean speedup over the CPU is in the hundreds, the
GPU sits in between, and compression alone (without EIE) buys only a few x.

The EIE bar of every benchmark is produced by the ``"cycle"`` backend of
:class:`repro.engine.EngineRegistry` (via :func:`repro.analysis.speedup`).
"""

from __future__ import annotations

from repro.analysis.report import format_table, render_series
from repro.analysis.speedup import GEOMEAN_KEY, SPEEDUP_CONFIGS, speedup_table
from repro.baselines.reference import PAPER_EIE_SPEEDUPS, PAPER_SPEEDUP_GEOMEAN
from repro.workloads.benchmarks import BENCHMARK_NAMES

from benchmarks.conftest import save_report


def test_fig6_speedup_over_cpu(benchmark, builder, eie_config, results_dir):
    """Regenerate Figure 6."""
    table = benchmark.pedantic(
        speedup_table, kwargs={"builder": builder, "eie_config": eie_config}, rounds=1, iterations=1
    )
    series = {config: {name: table[name][config] for name in table} for config in SPEEDUP_CONFIGS}
    text = "Speedup over CPU dense (batch 1):\n" + render_series(series, x_label="Benchmark")
    text += "\n\nEIE speedups versus the paper (Figure 6, last group):\n"
    text += format_table(
        ["Benchmark", "ours", "paper", "ratio"],
        [
            [name, table[name]["EIE"], PAPER_EIE_SPEEDUPS[name],
             table[name]["EIE"] / PAPER_EIE_SPEEDUPS[name]]
            for name in BENCHMARK_NAMES
        ],
    )
    text += f"\n\nGeometric-mean EIE speedup: ours = {table[GEOMEAN_KEY]['EIE']:.0f}x, " \
            f"paper = {PAPER_SPEEDUP_GEOMEAN['EIE']:.0f}x"
    save_report(results_dir, "fig6_speedup", text)

    geomean = table[GEOMEAN_KEY]
    # Shape checks, not exact matches.
    assert geomean["EIE"] > 100.0
    assert geomean["EIE"] > geomean["GPU Compressed"] > geomean["GPU Dense"]
    assert geomean["CPU Compressed"] < 10.0           # compression alone buys only a few x
    assert geomean["mGPU Dense"] < 2.0                # the mobile GPU is no faster than the CPU
    for name in BENCHMARK_NAMES:
        assert table[name]["EIE"] == max(table[name].values())
