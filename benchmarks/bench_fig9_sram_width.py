"""Figure 9: SRAM width versus read count, read energy and total energy.

Sweeps the Spmat SRAM interface width from 32 to 512 bits on the AlexNet
layers (the paper benchmarks this figure on AlexNet) through the
``"fig9_sram_width"`` experiment and checks the design conclusion: the number
of reads falls and the energy per read rises with width, and the total read
energy is minimised at the 64-bit interface EIE uses.
"""

from __future__ import annotations

from collections import defaultdict

from benchmarks.conftest import write_result

#: The paper benchmarks Figure 9 on the AlexNet layers.
ALEXNET_LAYERS = ("Alex-6", "Alex-7", "Alex-8")


def test_fig9_sram_width_sweep(benchmark, runner, results_dir):
    """Regenerate Figure 9 (both panels)."""
    result = benchmark.pedantic(
        runner.run,
        args=("fig9_sram_width",),
        kwargs={"workloads": ALEXNET_LAYERS},
        rounds=1,
        iterations=1,
    )
    write_result(results_dir, result)
    points = result.legacy()

    combined: dict[int, float] = defaultdict(float)
    for point in points:
        combined[point.width_bits] += point.total_energy_nj

    # Reads fall monotonically and energy per read rises monotonically with width.
    for layer in ALEXNET_LAYERS:
        layer_points = sorted(
            (p for p in points if p.benchmark == layer), key=lambda p: p.width_bits
        )
        reads = [p.num_reads for p in layer_points]
        energies = [p.energy_per_read_pj for p in layer_points]
        assert all(b <= a for a, b in zip(reads, reads[1:]))
        assert all(b > a for a, b in zip(energies, energies[1:]))
    # The total-energy optimum is the 64-bit interface the paper selects.
    assert min(combined, key=combined.get) == 64
