"""Figure 9: SRAM width versus read count, read energy and total energy.

Sweeps the Spmat SRAM interface width from 32 to 512 bits on the AlexNet
layers (the paper benchmarks this figure on AlexNet) and checks the design
conclusion: the number of reads falls and the energy per read rises with
width, and the total read energy is minimised at the 64-bit interface EIE
uses.
"""

from __future__ import annotations

from collections import defaultdict

from repro.analysis.design_space import DEFAULT_SRAM_WIDTHS, sram_width_sweep
from repro.analysis.report import format_table

from benchmarks.conftest import save_report

#: The paper benchmarks Figure 9 on the AlexNet layers.
ALEXNET_LAYERS = ("Alex-6", "Alex-7", "Alex-8")


def test_fig9_sram_width_sweep(benchmark, builder, results_dir):
    """Regenerate Figure 9 (both panels)."""
    points = benchmark.pedantic(
        sram_width_sweep,
        kwargs={"widths": DEFAULT_SRAM_WIDTHS, "benchmarks": ALEXNET_LAYERS, "builder": builder,
                "num_pes": 64},
        rounds=1,
        iterations=1,
    )
    rows = [
        [point.benchmark, point.width_bits, point.num_reads, point.energy_per_read_pj,
         point.total_energy_nj]
        for point in points
    ]
    text = "Spmat SRAM width sweep (AlexNet layers, 64 PEs):\n"
    text += format_table(
        ["Layer", "Width (bits)", "# Reads", "Energy/read (pJ)", "Total energy (nJ)"], rows
    )

    combined: dict[int, float] = defaultdict(float)
    for point in points:
        combined[point.width_bits] += point.total_energy_nj
    text += "\n\nTotal AlexNet Spmat read energy per width (nJ):\n"
    text += format_table(["Width (bits)", "Total energy (nJ)"], sorted(combined.items()))
    save_report(results_dir, "fig9_sram_width", text)

    # Reads fall monotonically and energy per read rises monotonically with width.
    for layer in ALEXNET_LAYERS:
        layer_points = sorted(
            (p for p in points if p.benchmark == layer), key=lambda p: p.width_bits
        )
        reads = [p.num_reads for p in layer_points]
        energies = [p.energy_per_read_pj for p in layer_points]
        assert all(b <= a for a, b in zip(reads, reads[1:]))
        assert all(b > a for a, b in zip(energies, energies[1:]))
    # The total-energy optimum is the 64-bit interface the paper selects.
    assert min(combined, key=combined.get) == 64
