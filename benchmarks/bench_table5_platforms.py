"""Table V: comparison with existing hardware platforms on AlexNet FC7.

Regenerates the throughput / area / power / efficiency comparison across
CPU, GPU, mobile GPU, A-Eye, DaDianNao, TrueNorth and the two EIE
configurations through the ``"table5_platforms"`` experiment, and checks the
headline claims: EIE (256 PE, 28 nm) has higher M x V throughput and about an
order of magnitude better energy efficiency than DaDianNao.
"""

from __future__ import annotations

from repro.analysis.report import format_table

from benchmarks.conftest import write_result


def test_table5_platform_comparison(benchmark, runner, results_dir):
    """Regenerate Table V."""
    result = benchmark.pedantic(runner.run, args=("table5_platforms",), rounds=1, iterations=1)
    rows = result.records
    extra = "Full platform detail:\n"
    extra += format_table(
        ["Platform", "Type", "Tech (nm)", "Clock (MHz)", "Memory", "Quantization",
         "Area (mm2)", "Power (W)", "Throughput (fps)", "Area eff. (fps/mm2)",
         "Energy eff. (frames/J)"],
        [
            [row["platform"], row["type"], row["technology_nm"], row["clock_mhz"], row["memory"],
             row["quantization"], row["area_mm2"], row["power_w"], row["throughput_fps"],
             row["area_efficiency_fps_mm2"], row["energy_efficiency_fpj"]]
            for row in rows
        ],
    )
    write_result(results_dir, result, extra=extra)

    by_name = {row["platform"]: row for row in rows}
    eie64 = by_name["EIE (64PE, 45nm)"]
    eie256 = by_name["EIE (256PE, 28nm)"]
    dadiannao = by_name["DaDianNao"]
    # Paper headline relations (shape, not exact numbers).
    assert eie256["throughput_fps"] > dadiannao["throughput_fps"]
    assert eie64["energy_efficiency_fpj"] > 10 * dadiannao["energy_efficiency_fpj"]
    assert eie64["power_w"] < 1.0
    assert eie64["throughput_fps"] > by_name["GeForce Titan X"]["throughput_fps"]
