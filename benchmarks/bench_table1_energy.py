"""Table I: energy per basic operation in a 45 nm process.

Regenerates the operation/energy/relative-cost rows through the
``"table1_energy"`` experiment and checks the headline relationships the
paper calls out (DRAM is three orders of magnitude more expensive than simple
arithmetic and 128x more than SRAM).
"""

from __future__ import annotations

from repro.hardware.energy import ENERGY_TABLE_45NM

from benchmarks.conftest import write_result


def test_table1_energy_table(benchmark, runner, results_dir):
    """Regenerate Table I."""
    result = benchmark.pedantic(runner.run, args=("table1_energy",), rounds=1, iterations=1)
    write_result(results_dir, result)
    rows = result.records
    assert ENERGY_TABLE_45NM.dram_over_sram == 128.0
    assert rows[-1]["relative_cost"] > 1000.0
