"""Table I: energy per basic operation in a 45 nm process.

Regenerates the operation/energy/relative-cost rows and checks the headline
relationships the paper calls out (DRAM is three orders of magnitude more
expensive than simple arithmetic and 128x more than SRAM).
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.analysis.tables import table1_rows
from repro.hardware.energy import ENERGY_TABLE_45NM

from benchmarks.conftest import save_report


def test_table1_energy_table(benchmark, results_dir):
    """Regenerate Table I."""
    rows = benchmark.pedantic(table1_rows, rounds=1, iterations=1)
    text = format_table(
        ["Operation", "Energy [pJ]", "Relative Cost"],
        [[row["operation"], row["energy_pj"], row["relative_cost"]] for row in rows],
    )
    save_report(results_dir, "table1_energy", text)
    assert ENERGY_TABLE_45NM.dram_over_sram == 128.0
    assert rows[-1]["relative_cost"] > 1000.0
