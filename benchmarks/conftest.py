"""Shared fixtures and reporting helpers for the benchmark harness.

Every module under ``benchmarks/`` regenerates one table or figure of the
paper at **full Table III scale** (no down-scaling).  The expensive part —
generating the Bernoulli sparsity patterns of the nine benchmark layers — is
shared across all modules through a session-scoped
:class:`~repro.workloads.generator.WorkloadBuilder`, and every benchmark
writes the rows/series it regenerates to ``results/<name>.txt`` so they can be
compared against the paper (see EXPERIMENTS.md).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core.config import EIEConfig
from repro.workloads.generator import WorkloadBuilder

#: Where the regenerated tables/figures are written.
RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def builder() -> WorkloadBuilder:
    """One workload builder (and pattern cache) for the whole benchmark run."""
    return WorkloadBuilder()


@pytest.fixture(scope="session")
def eie_config() -> EIEConfig:
    """The paper's 64-PE, 800 MHz, FIFO-depth-8 design point."""
    return EIEConfig()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory the regenerated tables and figure series are written to."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_report(results_dir: Path, name: str, text: str) -> None:
    """Write one regenerated table/figure to ``results/<name>.txt`` and echo it."""
    path = results_dir / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n===== {name} =====\n{text}\n")
