"""Shared fixtures and reporting helpers for the benchmark harness.

Every module under ``benchmarks/`` regenerates one table or figure of the
paper at **full Table III scale** (no down-scaling) by running the
corresponding registered experiment of :mod:`repro.experiments`.  The
expensive part — generating the Bernoulli sparsity patterns of the nine
benchmark layers — is shared across all modules through a session-scoped
:class:`~repro.experiments.runner.ExperimentRunner` (one workload builder and
one engine session), and every benchmark writes the result it regenerates to
``results/<experiment>.txt`` **and** ``results/<experiment>.json`` through
:meth:`~repro.experiments.result.ExperimentResult.write` so they can be
compared against the paper (see EXPERIMENTS.md).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core.config import EIEConfig
from repro.experiments import ExperimentResult, ExperimentRunner
from repro.workloads.generator import WorkloadBuilder

#: Where the regenerated tables/figures are written.
RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def builder() -> WorkloadBuilder:
    """One workload builder (and pattern cache) for the whole benchmark run."""
    return WorkloadBuilder()


@pytest.fixture(scope="session")
def runner(builder: WorkloadBuilder) -> ExperimentRunner:
    """One experiment runner (builder + engine session) for all benchmarks."""
    return ExperimentRunner(builder=builder)


@pytest.fixture(scope="session")
def eie_config() -> EIEConfig:
    """The paper's 64-PE, 800 MHz, FIFO-depth-8 design point."""
    return EIEConfig()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory the regenerated tables and figure series are written to."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_result(
    results_dir: Path, result: ExperimentResult, extra: str | None = None
) -> None:
    """Write one result to ``results/<experiment>.{txt,json}`` and echo it."""
    txt_path, _ = result.write(results_dir, extra=extra)
    print(f"\n===== {result.experiment} =====\n{txt_path.read_text()}")
